"""Synthetic spot-price trace generation.

The paper replays Amazon's us-east-1 spot traces from October 2016
(historical statistics) and November 2016 (evaluation).  Those traces
are not redistributable, so this module generates statistically similar
ones: a **mean-reverting base price** around the instance's long-run
spot discount, punctuated by **demand spikes** that push the price above
the on-demand level — the events that evict instances bid at the
on-demand price (the paper's and our bidding policy).

The generator is seeded and produces an "October" trace (fed to the
eviction/price statistics) and a disjoint "November" trace (replayed by
the simulator) from different seeds, mirroring the paper's methodology.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.instance import InstanceType
from repro.cloud.trace import PriceTrace
from repro.utils.rng import derive_rng
from repro.utils.units import HOURS


def generate_trace(
    instance: InstanceType,
    duration: float = 30 * 24 * HOURS,
    step: float = 60.0,
    seed=None,
    start_time: float = 0.0,
) -> PriceTrace:
    """Generate a synthetic spot-price trace for one instance type.

    Args:
        instance: the SKU; its ``spot_discount``, ``spot_volatility``,
            ``mean_spike_interval`` and ``mean_spike_duration`` calibrate
            the process.
        duration: trace length in seconds (default: 30 days).
        step: price change granularity in seconds.
        seed: RNG seed; same seed -> identical trace.
        start_time: timestamp of the first segment.

    Returns:
        A :class:`PriceTrace` whose price stays below the on-demand price
        in calm periods and exceeds it during spikes.
    """
    if duration <= 0 or step <= 0:
        raise ValueError("duration and step must be positive")
    rng = derive_rng(seed, "trace", instance.name)
    n = max(2, int(duration / step))
    times = start_time + step * np.arange(n)

    # Mean-reverting log-price around the long-run discounted level.
    mean_log = np.log(instance.mean_spot_price)
    reversion = step / (6 * HOURS)  # pull back over ~6 hours
    vol = instance.spot_volatility * np.sqrt(step / HOURS)
    log_price = np.empty(n)
    log_price[0] = mean_log + instance.spot_volatility * rng.standard_normal()
    shocks = vol * rng.standard_normal(n - 1)
    for i in range(1, n):
        log_price[i] = (
            log_price[i - 1]
            + reversion * (mean_log - log_price[i - 1])
            + shocks[i - 1]
        )
    prices = np.exp(log_price)
    # Calm-period prices never exceed 90 % of on-demand: evictions come
    # from spikes, not diffusion noise (matches observed market shape).
    prices = np.minimum(prices, 0.9 * instance.on_demand_price)

    # Overlay demand spikes: Poisson arrivals, exponential durations,
    # spike peak 1.1x-2.5x the on-demand price.
    t = 0.0
    while True:
        t += rng.exponential(instance.mean_spike_interval)
        if t >= duration:
            break
        spike_len = max(step, rng.exponential(instance.mean_spike_duration))
        peak = instance.on_demand_price * rng.uniform(1.1, 2.5)
        i0 = int(t / step)
        i1 = min(n, int((t + spike_len) / step) + 1)
        width = i1 - i0
        if width <= 0:
            continue
        # Ramp to the peak over the first third, then decay; the whole
        # spike stays above the on-demand price (it is the eviction).
        floor = 1.02 * instance.on_demand_price
        rise = max(1, width // 3)
        profile = np.concatenate(
            [np.linspace(floor, peak, rise), np.linspace(peak, floor, width - rise + 1)[1:]]
        )
        prices[i0:i1] = np.maximum(prices[i0:i1], profile[:width])
        t += spike_len

    return PriceTrace(times=times, prices=prices, instance_name=instance.name)


def generate_market_traces(
    instances,
    duration: float = 30 * 24 * HOURS,
    step: float = 60.0,
    seed=None,
    start_time: float = 0.0,
) -> dict[str, PriceTrace]:
    """Generate one trace per instance type, with independent streams."""
    return {
        itype.name: generate_trace(
            itype, duration=duration, step=step, seed=derive_rng(seed, itype.name),
            start_time=start_time,
        )
        for itype in instances
    }
