"""Vertex-centric programming API (Pregel's "think like a vertex").

A :class:`VertexProgram` defines the per-vertex ``compute`` function that
the engine runs every superstep for every active vertex.  Inside
``compute`` the program reads incoming messages, updates the vertex
value, sends messages along out-edges, and may vote to halt.  The engine
follows the classic Bulk Synchronous Parallel semantics: messages sent in
superstep ``s`` are delivered in superstep ``s + 1``; the computation
ends when every vertex has halted and no messages are in flight.

Programs whose state is numeric can additionally implement
:meth:`VertexProgram.compute_dense`, which receives a
:class:`DenseComputeContext` covering *all* active vertices at once and
operates on whole numpy arrays — the engine then skips the per-vertex
Python loop entirely.  Semantics are identical: one call per superstep,
messages land next superstep, un-halted vertices stay active.
"""

from __future__ import annotations

import abc
import numpy as np


class ComputeContext:
    """Everything a vertex sees during one ``compute`` invocation.

    The engine reuses a single context object per worker per superstep
    and re-points it at each vertex, so programs must not hold on to it
    across invocations.
    """

    __slots__ = (
        "vertex_id",
        "value",
        "superstep",
        "num_vertices",
        "_out_edges",
        "_out_weights",
        "_outbox",
        "_halted",
        "_aggregators",
        "_prev_aggregates",
    )

    def __init__(self):
        self.vertex_id = -1
        self.value = None
        self.superstep = 0
        self.num_vertices = 0
        self._out_edges = None
        self._out_weights = None
        self._outbox = None
        self._halted = False
        self._aggregators = {}
        self._prev_aggregates = {}

    # -- topology ------------------------------------------------------
    @property
    def out_edges(self) -> np.ndarray:
        """Destination vertex ids of this vertex's out-edges."""
        return self._out_edges

    @property
    def out_weights(self) -> np.ndarray:
        """Weights parallel to :attr:`out_edges` (1.0 when unweighted)."""
        return self._out_weights

    @property
    def out_degree(self) -> int:
        """Number of out-edges of the bound vertex."""
        return len(self._out_edges)

    # -- messaging -----------------------------------------------------
    def send(self, dst: int, message) -> None:
        """Send *message* to vertex *dst*, delivered next superstep."""
        self._outbox.append((int(dst), message))

    def send_to_neighbors(self, message) -> None:
        """Send the same message along every out-edge."""
        outbox = self._outbox
        for dst in self._out_edges:
            outbox.append((int(dst), message))

    # -- halting -------------------------------------------------------
    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message wakes it up."""
        self._halted = True

    # -- aggregation ---------------------------------------------------
    def aggregate(self, name: str, value) -> None:
        """Contribute *value* to the named aggregator for this superstep."""
        self._aggregators[name].accumulate(value)

    def aggregated(self, name: str):
        """Read the named aggregator's value from the *previous* superstep."""
        return self._prev_aggregates.get(name)


class DenseComputeContext:
    """One superstep's whole-graph view for :meth:`~VertexProgram.compute_dense`.

    All arrays are indexed by global vertex id.  The program mutates
    :attr:`values` in place for the vertices it updates, emits batched
    messages via :meth:`send_batch` / :meth:`send_to_all_neighbors`, and
    deactivates vertices via :meth:`vote_to_halt`; every vertex in
    :attr:`active` that does not vote stays active next superstep.
    """

    __slots__ = (
        "superstep",
        "num_vertices",
        "graph",
        "values",
        "active",
        "messages",
        "has_message",
        "_edge_src",
        "_sends",
        "_halt_mask",
        "_aggregators",
        "_prev_aggregates",
    )

    def __init__(
        self,
        *,
        superstep: int,
        graph,
        values: np.ndarray,
        active: np.ndarray,
        messages: np.ndarray,
        has_message: np.ndarray,
        edge_src: np.ndarray,
        aggregators: dict,
        prev_aggregates: dict,
    ):
        self.superstep = superstep
        self.num_vertices = graph.num_vertices
        self.graph = graph
        self.values = values
        self.active = active
        self.messages = messages
        self.has_message = has_message
        self._edge_src = edge_src
        self._sends: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._halt_mask = np.zeros(graph.num_vertices, dtype=bool)
        self._aggregators = aggregators
        self._prev_aggregates = prev_aggregates

    # -- topology ------------------------------------------------------
    @property
    def edge_sources(self) -> np.ndarray:
        """Source vertex of every CSR edge (parallel to ``graph.indices``)."""
        return self._edge_src

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.graph.indptr)

    # -- messaging -----------------------------------------------------
    def send_batch(self, src_ids, dst_ids, messages) -> None:
        """Send ``messages[i]`` from ``src_ids[i]`` to ``dst_ids[i]``.

        Sources are needed for the engine's local/remote traffic
        accounting (sender-side combining happens per source worker).
        """
        src = np.asarray(src_ids, dtype=np.int64)
        dst = np.asarray(dst_ids, dtype=np.int64)
        msg = np.asarray(messages)
        if not (src.shape == dst.shape == msg.shape):
            raise ValueError("src, dst and messages must be parallel arrays")
        if len(src):
            self._sends.append((src, dst, msg))

    def send_to_all_neighbors(self, src_mask: np.ndarray, message_per_vertex) -> None:
        """Broadcast ``message_per_vertex[v]`` along every out-edge of each
        vertex ``v`` selected by the boolean ``src_mask``."""
        keep = np.asarray(src_mask, dtype=bool)[self._edge_src]
        src = self._edge_src[keep]
        self.send_batch(
            src, self.graph.indices[keep], np.asarray(message_per_vertex)[src]
        )

    # -- halting -------------------------------------------------------
    def vote_to_halt(self, who: np.ndarray) -> None:
        """Deactivate the vertices selected by boolean mask or id array."""
        self._halt_mask[who] = True

    # -- aggregation ---------------------------------------------------
    def aggregate(self, name: str, value) -> None:
        """Contribute an already-reduced *value* to the named aggregator."""
        self._aggregators[name].accumulate(value)

    def aggregated(self, name: str):
        """Read the named aggregator's value from the *previous* superstep."""
        return self._prev_aggregates.get(name)


class VertexProgram(abc.ABC):
    """A Pregel computation.

    Subclasses implement :meth:`initial_value` and :meth:`compute`;
    optionally they declare a message :attr:`combiner`, a dict of
    :attr:`aggregators` (name -> Aggregator factory), a numpy
    :attr:`value_dtype` for dense state, vectorized initial values via
    :meth:`initial_values`, and a batched :meth:`compute_dense`.
    """

    #: Optional message combiner class (see :mod:`repro.engine.messages`).
    combiner = None

    #: Numpy dtype of the vertex value array (None -> ``object``).
    value_dtype = None

    def aggregators(self) -> dict:
        """Aggregator factories, keyed by name (default: none)."""
        return {}

    @abc.abstractmethod
    def initial_value(self, vertex_id: int, num_vertices: int):
        """Value of *vertex_id* before superstep 0."""

    def initial_values(self, num_vertices: int) -> np.ndarray | None:
        """Whole initial value array at once (None -> per-vertex calls)."""
        return None

    @abc.abstractmethod
    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """Run one superstep for the vertex bound to *ctx*.

        ``messages`` holds the messages delivered this superstep (empty
        list at superstep 0 unless the program seeds messages).  Update
        ``ctx.value`` in place, call ``ctx.send``/``ctx.vote_to_halt``.
        """

    #: Set when :meth:`compute_dense` is implemented; the engine then
    #: runs the batched array path instead of per-vertex ``compute``.
    supports_dense = False

    def compute_dense(self, ctx: DenseComputeContext) -> None:
        """Run one superstep for *all* active vertices at once."""
        raise NotImplementedError

    def is_active_initially(self, vertex_id: int) -> bool:
        """Whether the vertex starts active (default: all do)."""
        return True

    #: Estimated bytes per message, used by network accounting.
    message_bytes: int = 8
