"""Vertex-centric programming API (Pregel's "think like a vertex").

A :class:`VertexProgram` defines the per-vertex ``compute`` function that
the engine runs every superstep for every active vertex.  Inside
``compute`` the program reads incoming messages, updates the vertex
value, sends messages along out-edges, and may vote to halt.  The engine
follows the classic Bulk Synchronous Parallel semantics: messages sent in
superstep ``s`` are delivered in superstep ``s + 1``; the computation
ends when every vertex has halted and no messages are in flight.
"""

from __future__ import annotations

import abc
import numpy as np


class ComputeContext:
    """Everything a vertex sees during one ``compute`` invocation.

    The engine reuses a single context object per worker per superstep
    and re-points it at each vertex, so programs must not hold on to it
    across invocations.
    """

    __slots__ = (
        "vertex_id",
        "value",
        "superstep",
        "num_vertices",
        "_out_edges",
        "_out_weights",
        "_outbox",
        "_halted",
        "_aggregators",
        "_prev_aggregates",
    )

    def __init__(self):
        self.vertex_id = -1
        self.value = None
        self.superstep = 0
        self.num_vertices = 0
        self._out_edges = None
        self._out_weights = None
        self._outbox = None
        self._halted = False
        self._aggregators = {}
        self._prev_aggregates = {}

    # -- topology ------------------------------------------------------
    @property
    def out_edges(self) -> np.ndarray:
        """Destination vertex ids of this vertex's out-edges."""
        return self._out_edges

    @property
    def out_weights(self) -> np.ndarray:
        """Weights parallel to :attr:`out_edges` (1.0 when unweighted)."""
        return self._out_weights

    @property
    def out_degree(self) -> int:
        """Number of out-edges of the bound vertex."""
        return len(self._out_edges)

    # -- messaging -----------------------------------------------------
    def send(self, dst: int, message) -> None:
        """Send *message* to vertex *dst*, delivered next superstep."""
        self._outbox.append((int(dst), message))

    def send_to_neighbors(self, message) -> None:
        """Send the same message along every out-edge."""
        outbox = self._outbox
        for dst in self._out_edges:
            outbox.append((int(dst), message))

    # -- halting -------------------------------------------------------
    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message wakes it up."""
        self._halted = True

    # -- aggregation ---------------------------------------------------
    def aggregate(self, name: str, value) -> None:
        """Contribute *value* to the named aggregator for this superstep."""
        self._aggregators[name].accumulate(value)

    def aggregated(self, name: str):
        """Read the named aggregator's value from the *previous* superstep."""
        return self._prev_aggregates.get(name)


class VertexProgram(abc.ABC):
    """A Pregel computation.

    Subclasses implement :meth:`initial_value` and :meth:`compute`;
    optionally they declare a message :attr:`combiner` and a dict of
    :attr:`aggregators` (name -> Aggregator factory).
    """

    #: Optional message combiner class (see :mod:`repro.engine.messages`).
    combiner = None

    def aggregators(self) -> dict:
        """Aggregator factories, keyed by name (default: none)."""
        return {}

    @abc.abstractmethod
    def initial_value(self, vertex_id: int, num_vertices: int):
        """Value of *vertex_id* before superstep 0."""

    @abc.abstractmethod
    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """Run one superstep for the vertex bound to *ctx*.

        ``messages`` holds the messages delivered this superstep (empty
        list at superstep 0 unless the program seeds messages).  Update
        ``ctx.value`` in place, call ``ctx.send``/``ctx.vote_to_halt``.
        """

    def is_active_initially(self, vertex_id: int) -> bool:
        """Whether the vertex starts active (default: all do)."""
        return True

    #: Estimated bytes per message, used by network accounting.
    message_bytes: int = 8
