"""Multiprocess execution backend for the Pregel engine.

Promotes :class:`~repro.engine.worker.Worker` from an index-space
fiction to a real OS process: the dense vertex-value / halted / message
arrays live in one :mod:`multiprocessing.shared_memory` segment, and a
persistent :class:`~concurrent.futures.ProcessPoolExecutor` runs one
``compute_dense`` call per worker per superstep.  The parent process is
the BSP master: it merges the previous superstep's messages into the
shared inbox arrays, computes the global active mask, fans one task per
worker out to the pool, barriers on the results, and performs the
batched cross-worker message exchange.

Shared-memory layout (one segment, 64-byte aligned sections)::

    values     num_vertices x value_dtype   vertex state (workers write own slots)
    halted     num_vertices x bool          vote-to-halt flags (workers write own)
    active     num_vertices x bool          this superstep's active mask (master writes)
    msg_vals   num_vertices x float64       combined inbox values (master writes)
    msg_mask   num_vertices x bool          inbox destinations (master writes)
    send_src   num_edges    x int64         outbox: message sources (workers write)
    send_dst   num_edges    x int64         outbox: message destinations
    send_msg   num_edges    x float64       outbox: message payloads

The outbox is split into per-worker extents sized by each worker's total
out-degree, so workers write their sends without coordination; a program
that emits more messages than its worker's out-edges spills the excess
through the (pickled) result path instead of overrunning its extent.

**Determinism.**  Results are bit-identical to the serial engine: halted
and value writes are restricted to disjoint owned slots, and the master
merges the per-worker outboxes with a stable sort on the source vertex
before delivering them.  The serial dense path emits messages in CSR
edge order (source-ascending) for every built-in program, and all of a
source's messages come from exactly one worker in their original order,
so the stable merge reproduces the serial delivery order exactly — which
is what keeps floating-point ``SumCombiner`` accumulation identical.
(Order-insensitive combiners — min/max — are bit-identical regardless of
emission order.)  Aggregator values are reduced from per-worker partials
at the barrier, matching Giraph's real aggregator semantics; they may
differ from the serial engine in the last float ulp and are excluded
from the bit-identity contract.

Parallel mode requires the ``fork`` start method (the graph topology and
the program are inherited copy-on-write; only mutable state needs shared
memory) and a numeric ``value_dtype``.  When either is unavailable the
engine transparently runs its serial path.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import NamedTuple

import numpy as np

from repro.engine.engine import PregelEngine
from repro.engine.vertex import DenseComputeContext
from repro.obs.state import get_metrics, get_tracer

_ALIGN = 64


def parallel_execution_supported(program=None) -> bool:
    """Whether this host/program can run the multiprocess dense path.

    Needs the ``fork`` start method (Linux/macOS) and, when *program* is
    given, a dense-capable program with a numeric value dtype.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    if program is None:
        return True
    if not getattr(program, "supports_dense", False):
        return False
    dtype = getattr(program, "value_dtype", None)
    return dtype is not None and np.issubdtype(np.dtype(dtype), np.number)


@dataclass
class _WorkerSetup:
    """Everything a pool process needs; inherited copy-on-write by fork."""

    graph: object
    program: object
    own_masks: list  # worker -> bool mask over vertices
    edge_src: np.ndarray
    values: np.ndarray
    halted: np.ndarray
    active: np.ndarray
    msg_vals: np.ndarray
    msg_mask: np.ndarray
    send_src: np.ndarray
    send_dst: np.ndarray
    send_msg: np.ndarray
    send_offsets: np.ndarray
    send_caps: np.ndarray


class _TaskResult(NamedTuple):
    """One worker's superstep outcome (everything bulky stays in shm)."""

    worker_id: int
    sent: int
    overflow: tuple | None  # (src, dst, msg) arrays beyond the shm extent
    partials: dict
    compute_seconds: float


_SETUP: _WorkerSetup | None = None


def _init_pool_process(setup: _WorkerSetup) -> None:
    global _SETUP
    _SETUP = setup


def _run_superstep(worker_id: int, superstep: int, prev_aggregates: dict):
    """Execute one worker's share of a superstep against shared memory."""
    st = _SETUP
    started = time.perf_counter()
    own = st.own_masks[worker_id]
    active_w = st.active & own
    program = st.program
    aggregators = {name: factory() for name, factory in program.aggregators().items()}
    ctx = DenseComputeContext(
        superstep=superstep,
        graph=st.graph,
        values=st.values,
        active=active_w,
        messages=st.msg_vals,
        has_message=st.msg_mask,
        edge_src=st.edge_src,
        aggregators=aggregators,
        prev_aggregates=prev_aggregates,
    )
    program.compute_dense(ctx)

    # Same bookkeeping as the serial path, restricted to owned slots
    # (ownership is disjoint, so concurrent workers never collide).
    st.halted[active_w] = False
    st.halted[ctx._halt_mask & own] = True

    # Write sends into this worker's outbox extent, in emission order.
    offset = int(st.send_offsets[worker_id])
    cap = int(st.send_caps[worker_id])
    pos = 0
    overflow_parts: list[tuple] = []
    for src, dst, msg in ctx._sends:
        count = len(src)
        room = cap - pos
        fit = min(count, room)
        if fit > 0:
            st.send_src[offset + pos : offset + pos + fit] = src[:fit]
            st.send_dst[offset + pos : offset + pos + fit] = dst[:fit]
            st.send_msg[offset + pos : offset + pos + fit] = msg[:fit]
            pos += fit
        if fit < count:
            overflow_parts.append((src[fit:], dst[fit:], msg[fit:]))
    overflow = None
    if overflow_parts:
        overflow = (
            np.concatenate([s for s, _, _ in overflow_parts]),
            np.concatenate([d for _, d, _ in overflow_parts]),
            np.concatenate([m for _, _, m in overflow_parts]).astype(
                np.float64, copy=False
            ),
        )
    partials = {name: agg.value for name, agg in aggregators.items()}
    return _TaskResult(
        worker_id=worker_id,
        sent=pos,
        overflow=overflow,
        partials=partials,
        compute_seconds=time.perf_counter() - started,
    )


class ParallelBackend:
    """Owns the shared-memory arena and the persistent worker pool.

    Built lazily by :class:`~repro.engine.engine.PregelEngine` on the
    first parallel superstep.  The backend never stores a reference to
    the engine (so a ``weakref.finalize`` on the engine can safely close
    it); per-step engine state is passed into :meth:`step`.
    """

    def __init__(
        self,
        graph,
        program,
        owner: np.ndarray,
        num_workers: int,
        values: np.ndarray,
        halted: np.ndarray,
        edge_src: np.ndarray,
        num_processes: int | None = None,
    ):
        n = graph.num_vertices
        self.num_workers = num_workers
        value_dtype = values.dtype

        degrees = np.diff(graph.indptr)
        caps = np.bincount(owner, weights=degrees, minlength=num_workers).astype(
            np.int64
        )
        offsets = np.zeros(num_workers, dtype=np.int64)
        np.cumsum(caps[:-1], out=offsets[1:])
        total_sends = int(caps.sum())

        sections = [
            ("values", n, value_dtype),
            ("halted", n, np.dtype(bool)),
            ("active", n, np.dtype(bool)),
            ("msg_vals", n, np.dtype(np.float64)),
            ("msg_mask", n, np.dtype(bool)),
            ("send_src", total_sends, np.dtype(np.int64)),
            ("send_dst", total_sends, np.dtype(np.int64)),
            ("send_msg", total_sends, np.dtype(np.float64)),
        ]
        layout = {}
        cursor = 0
        for name, count, dtype in sections:
            layout[name] = (cursor, count, dtype)
            nbytes = count * dtype.itemsize
            cursor += nbytes + (-nbytes) % _ALIGN
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, cursor))
        self.shm_bytes = self._shm.size
        self._arrays: dict[str, np.ndarray] | None = {
            name: np.ndarray(count, dtype=dtype, buffer=self._shm.buf, offset=off)
            for name, (off, count, dtype) in layout.items()
        }
        arr = self._arrays
        arr["values"][...] = values
        arr["halted"][...] = halted
        self.values = arr["values"]
        self.halted = arr["halted"]
        self._send_offsets = offsets
        self._send_caps = caps
        self._owner = owner

        setup = _WorkerSetup(
            graph=graph,
            program=program,
            own_masks=[owner == w for w in range(num_workers)],
            edge_src=edge_src,
            values=arr["values"],
            halted=arr["halted"],
            active=arr["active"],
            msg_vals=arr["msg_vals"],
            msg_mask=arr["msg_mask"],
            send_src=arr["send_src"],
            send_dst=arr["send_dst"],
            send_msg=arr["send_msg"],
            send_offsets=offsets,
            send_caps=caps,
        )
        if num_processes is None:
            num_processes = min(num_workers, max(1, os.cpu_count() or 1))
        self.num_processes = max(1, num_processes)
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=self.num_processes,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_init_pool_process,
            initargs=(setup,),
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "engine.parallel.start",
                workers=num_workers,
                processes=self.num_processes,
                shm_bytes=self.shm_bytes,
            )
            get_metrics().gauge(
                "engine_shm_bytes",
                "Shared-memory arena bytes held by a parallel engine",
            ).set(self.shm_bytes, workers=num_workers)

    # ------------------------------------------------------------------
    def step(self, engine) -> bool:
        """Run one parallel superstep; mirrors ``PregelEngine._step_dense``."""
        from repro.engine.messages import MessageStore

        arrays = self._arrays
        n = engine.graph.num_vertices
        engine._incoming.dense_view_into(n, arrays["msg_vals"], arrays["msg_mask"])
        np.logical_or(~self.halted, arrays["msg_mask"], out=arrays["active"])
        active = int(np.count_nonzero(arrays["active"]))

        futures = [
            self._pool.submit(_run_superstep, w, engine.superstep, engine._prev_aggregates)
            for w in range(self.num_workers)
        ]
        results = [future.result() for future in futures]  # superstep barrier

        program = engine.program
        aggregators = {
            name: factory() for name, factory in program.aggregators().items()
        }
        tracer = get_tracer()
        traced = tracer.enabled
        for res in results:
            for name, partial in res.partials.items():
                aggregators[name].accumulate(partial)
            if traced:
                get_metrics().histogram(
                    "engine_worker_compute_seconds",
                    "Per-worker wall-clock compute per parallel superstep",
                ).observe(res.compute_seconds, worker=res.worker_id)

        # Batched cross-worker exchange: gather each worker's outbox
        # extent, then stable-sort by source to reproduce serial order.
        seg_src, seg_dst, seg_msg = [], [], []
        for res in results:
            if res.sent:
                lo = int(self._send_offsets[res.worker_id])
                hi = lo + res.sent
                seg_src.append(arrays["send_src"][lo:hi])
                seg_dst.append(arrays["send_dst"][lo:hi])
                seg_msg.append(arrays["send_msg"][lo:hi])
            if res.overflow is not None:
                src, dst, msg = res.overflow
                seg_src.append(src)
                seg_dst.append(dst)
                seg_msg.append(msg)

        outgoing = MessageStore(program.combiner, num_vertices=n)
        sent = local = remote = 0
        if seg_src:
            src = np.concatenate(seg_src)
            dst = np.concatenate(seg_dst)
            msg = np.concatenate(seg_msg)
            order = np.argsort(src, kind="stable")
            src, dst, msg = src[order], dst[order], msg[order]
            sent = len(dst)
            outgoing.deliver_many(dst, msg)
            slot_key = self._owner[src] * np.int64(n) + dst
            slots = np.unique(slot_key)
            slot_worker = slots // n
            slot_dst = slots % n
            remote = int(np.count_nonzero(self._owner[slot_dst] != slot_worker))
            local = len(slots) - remote

        engine._finish_superstep(aggregators, outgoing, active, sent, local, remote)
        return bool(outgoing) or not bool(self.halted.all())

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the pool and release the shared-memory arena (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shm is not None:
            self._arrays = None
            self.values = None
            self.halted = None
            gc.collect()  # drop lingering views so the buffer can close
            shm, self._shm = self._shm, None
            try:
                shm.close()
            except BufferError:  # a view survived; the OS reclaims at exit
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

class ParallelPregelEngine(PregelEngine):
    """A :class:`~repro.engine.engine.PregelEngine` pinned to parallel mode.

    Convenience subclass for callers that want multiprocess execution by
    construction instead of passing ``execution="parallel"``.  Inherits
    the transparent serial fallback for unsupported platforms/programs.
    """

    def __init__(
        self,
        graph,
        program,
        partitioning=None,
        max_supersteps: int = 10_000,
        tracer=None,
        num_processes: int | None = None,
    ):
        super().__init__(
            graph,
            program,
            partitioning,
            max_supersteps=max_supersteps,
            tracer=tracer,
            execution="parallel",
            num_processes=num_processes,
        )
