"""Simulated external datastore (the S3/HDFS stand-in).

An in-memory object store with a simple performance model: reads and
writes of ``n`` bytes by ``p`` machines in parallel take
``latency + n / (p * bandwidth)`` simulated seconds (the store itself is
assumed not to be the bottleneck, matching S3's scalability).  The store
keeps transfer counters so tests and experiments can assert on data
movement.

All *simulated* durations are returned to the caller; nothing here
sleeps.  Wall-clock cost is just the in-memory copy.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from repro.obs.state import get_metrics, get_tracer
from repro.utils.units import MiB
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class TransferStats:
    """Cumulative datastore traffic."""

    bytes_read: int
    bytes_written: int
    objects_read: int
    objects_written: int


class DataStore:
    """In-memory object store with a bandwidth/latency timing model.

    Args:
        bandwidth: per-machine sustained throughput in bytes/second
            (default 100 MiB/s, a typical S3 single-stream figure).
        latency: per-operation setup latency in seconds.
    """

    def __init__(self, bandwidth: float = 100 * MiB, latency: float = 0.05):
        check_positive("bandwidth", bandwidth)
        check_non_negative("latency", latency)
        self.bandwidth = bandwidth
        self.latency = latency
        self._objects: dict[str, bytes] = {}
        self._bytes_read = 0
        self._bytes_written = 0
        self._objects_read = 0
        self._objects_written = 0

    # ------------------------------------------------------------------
    # Object operations
    # ------------------------------------------------------------------
    def put(self, key: str, data: bytes) -> float:
        """Store *data* under *key*; returns the simulated write time."""
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(f"data must be bytes, got {type(data).__name__}")
        self._objects[key] = bytes(data)
        self._bytes_written += len(data)
        self._objects_written += 1
        seconds = self.transfer_time(len(data))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("datastore.put", key=key, nbytes=len(data), sim_seconds=seconds)
            get_metrics().counter(
                "datastore_bytes_written_total", "Bytes written to the datastore"
            ).inc(len(data))
        return seconds

    def get(self, key: str) -> bytes:
        """Fetch the object stored under *key* (KeyError when missing)."""
        data = self._objects[key]
        self._bytes_read += len(data)
        self._objects_read += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("datastore.get", key=key, nbytes=len(data))
            get_metrics().counter(
                "datastore_bytes_read_total", "Bytes read from the datastore"
            ).inc(len(data))
        return data

    def get_timed(self, key: str) -> tuple[bytes, float]:
        """Fetch an object plus its simulated read time."""
        data = self.get(key)
        return data, self.transfer_time(len(data))

    def delete(self, key: str) -> None:
        """Remove an object; missing keys are ignored (idempotent)."""
        self._objects.pop(key, None)

    def exists(self, key: str) -> bool:
        """Whether *key* is stored."""
        return key in self._objects

    def list_keys(self, prefix: str = "") -> list[str]:
        """All stored keys with the given prefix, sorted."""
        return sorted(k for k in self._objects if k.startswith(prefix))

    def size_of(self, key: str) -> int:
        """Stored size of *key* in bytes."""
        return len(self._objects[key])

    # ------------------------------------------------------------------
    # Structured payloads (checkpoints and similar array-heavy state)
    # ------------------------------------------------------------------
    def put_object(self, key: str, obj) -> float:
        """Serialize and store *obj*; returns the simulated write time.

        Uses the highest pickle protocol, which writes numpy arrays as
        raw buffers — checkpoint state arrays go to the store directly
        instead of being exploded into per-vertex containers.
        """
        self.put(key, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        return self.transfer_time(len(self._objects[key]))

    def get_object_timed(self, key: str) -> tuple[object, float]:
        """Fetch and deserialize an object plus its simulated read time."""
        payload, read_time = self.get_timed(key)
        return pickle.loads(payload), read_time

    # ------------------------------------------------------------------
    # Timing model
    # ------------------------------------------------------------------
    def transfer_time(self, nbytes: int, parallel_machines: int = 1) -> float:
        """Simulated seconds to move *nbytes* using *parallel_machines*."""
        check_non_negative("nbytes", nbytes)
        if parallel_machines < 1:
            raise ValueError("parallel_machines must be >= 1")
        return self.latency + nbytes / (parallel_machines * self.bandwidth)

    @property
    def stats(self) -> TransferStats:
        """Cumulative transfer counters."""
        return TransferStats(
            bytes_read=self._bytes_read,
            bytes_written=self._bytes_written,
            objects_read=self._objects_read,
            objects_written=self._objects_written,
        )

    def total_stored_bytes(self) -> int:
        """Sum of all stored object sizes."""
        return sum(len(v) for v in self._objects.values())
