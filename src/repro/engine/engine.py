"""The Pregel-style BSP execution engine (the Giraph stand-in).

Runs a :class:`~repro.engine.vertex.VertexProgram` over a partitioned
graph in synchronous supersteps across simulated workers.  Messages are
combined at the sender (when the program declares a combiner), routed to
their destination worker, and delivered at the next barrier; aggregators
are reduced at the barrier and broadcast to the next superstep, exactly
following the Pregel/Giraph model the paper runs on.

Vertex values and halted flags live in dense numpy arrays indexed by
global vertex id (shared with the workers).  The superstep loop computes
the active set, the local/remote traffic split and the global halt
condition from those arrays; programs that implement ``compute_dense``
run one batched array call per superstep instead of a per-vertex Python
loop, which is what makes long runs (PageRank over tens of thousands of
vertices for Figs 5-7) cheap.

The engine tracks per-superstep statistics — active vertices, local vs
remote messages, estimated network bytes — which is how partition
quality translates into simulated execution time (cut edges ⇒ remote
messages ⇒ network cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.engine.messages import MessageStore
from repro.engine.vertex import ComputeContext, DenseComputeContext, VertexProgram
from repro.engine.worker import Worker, build_workers, value_dtype_of
from repro.graph.graph import Graph
from repro.obs.state import get_metrics, get_tracer
from repro.partitioning.base import Partitioning


@dataclass(frozen=True)
class SuperstepStats:
    """Observability record for one superstep."""

    superstep: int
    active_vertices: int
    messages_sent: int
    local_messages: int
    remote_messages: int
    remote_bytes: int

    @property
    def remote_fraction(self) -> float:
        """Fraction of message traffic that crossed workers."""
        total = self.local_messages + self.remote_messages
        return self.remote_messages / total if total else 0.0


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of a full run (or a run segment)."""

    values: dict
    supersteps_run: int
    halted_normally: bool
    stats: list[SuperstepStats]
    aggregates: dict

    @property
    def total_messages(self) -> int:
        """Messages sent across all supersteps."""
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_remote_messages(self) -> int:
        """Cross-worker messages across all supersteps."""
        return sum(s.remote_messages for s in self.stats)

    def values_array(self, dtype=np.float64) -> np.ndarray:
        """Vertex values as a dense array indexed by vertex id.

        Requires a dense id space ``0..max(id)``; sparse or negative ids
        raise ``ValueError`` instead of silently writing out of range.
        """
        if not self.values:
            return np.empty(0, dtype=dtype)
        ids = np.fromiter(self.values.keys(), dtype=np.int64, count=len(self.values))
        if ids.min() < 0:
            raise ValueError("vertex ids must be non-negative")
        size = int(ids.max()) + 1
        if size != len(self.values):
            raise ValueError(
                f"vertex ids are not dense: {len(self.values)} values but ids "
                f"span 0..{size - 1}"
            )
        arr = np.empty(size, dtype=dtype)
        # One vectorized scatter instead of a per-vertex Python loop
        # (ids and values iterate the dict in the same order).
        arr[ids] = np.fromiter(
            self.values.values(), dtype=dtype, count=len(self.values)
        )
        return arr


class PregelEngine:
    """Synchronous vertex-centric engine over simulated workers.

    Args:
        graph: the input graph (message topology = out-edges).
        program: the vertex program to run.
        partitioning: vertex -> worker assignment; its ``num_parts`` is
            the worker count.
        max_supersteps: safety cap (default 10_000).
        tracer: :class:`~repro.obs.trace.Tracer` for ``superstep`` spans
            (default: the process tracer at construction time; the
            no-op tracer costs one branch per superstep).
        execution: ``"serial"`` (default) runs everything in-process;
            ``"parallel"`` runs each worker's dense superstep compute in
            a real OS process against shared-memory state arrays (see
            :mod:`repro.engine.parallel`).  Results are bit-identical.
            Programs without ``compute_dense`` (or with non-numeric
            values), and hosts without the ``fork`` start method, fall
            back to the serial path transparently.
        num_processes: pool size for parallel execution (default: one
            per worker, capped at the CPU count).
    """

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        partitioning: Partitioning | None = None,
        max_supersteps: int = 10_000,
        tracer=None,
        execution: str = "serial",
        num_processes: int | None = None,
    ):
        if partitioning is None:
            from repro.partitioning.hashing import HashPartitioner

            partitioning = HashPartitioner().partition(graph, 1)
        if partitioning.num_vertices != graph.num_vertices:
            raise ValueError("partitioning does not match graph")
        if max_supersteps < 1:
            raise ValueError("max_supersteps must be >= 1")
        if execution not in ("serial", "parallel"):
            raise ValueError(
                f"execution must be 'serial' or 'parallel', got {execution!r}"
            )
        self.execution = execution
        self._num_processes = num_processes
        self._parallel = None  # lazy ParallelBackend
        self._parallel_unavailable = False
        self._finalizer = None
        self._edge_src_spill = None  # TemporaryDirectory for out-of-core src ids
        self.graph = graph
        self.program = program
        self.partitioning = partitioning
        self.max_supersteps = max_supersteps
        self._tracer = tracer if tracer is not None else get_tracer()
        self.num_workers = partitioning.num_parts
        self.workers: list[Worker] = build_workers(partitioning, self.num_workers)
        self._owner = partitioning.assignment  # vertex -> worker
        self.superstep = 0
        self.stats: list[SuperstepStats] = []
        n = graph.num_vertices
        self._incoming = MessageStore(program.combiner, num_vertices=n)
        self._prev_aggregates: dict = {}
        self._edge_src: np.ndarray | None = None  # lazy np.repeat over CSR
        self._values = np.empty(n, dtype=value_dtype_of(program))
        self._halted = np.zeros(n, dtype=bool)
        self._init_state()
        for worker in self.workers:
            worker.attach(self._values, self._halted)

    def _init_state(self) -> None:
        program, n = self.program, self.graph.num_vertices
        init = program.initial_values(n)
        if init is not None:
            init = np.asarray(init)
            if init.shape != (n,):
                raise ValueError(
                    f"initial_values returned shape {init.shape}, expected ({n},)"
                )
            self._values[...] = init
        else:
            # Batched per-vertex evaluation: one fromiter pass instead of
            # n indexed stores (which dominate init at 10M+ vertices).
            self._values[...] = np.fromiter(
                (program.initial_value(v, n) for v in range(n)),
                dtype=self._values.dtype,
                count=n,
            )
        # All vertices start active unless the program opts some out.
        if type(program).is_active_initially is not VertexProgram.is_active_initially:
            self._halted[...] = np.fromiter(
                (not program.is_active_initially(v) for v in range(n)),
                dtype=bool,
                count=n,
            )

    def _edge_sources(self) -> np.ndarray:
        if self._edge_src is None:
            from repro.graph.io import is_memmap_backed

            out_degrees = np.diff(self.graph.indptr)
            if is_memmap_backed(self.graph.indices) and self.graph.num_edges:
                self._edge_src = self._spill_edge_sources(out_degrees)
            else:
                self._edge_src = np.repeat(
                    np.arange(self.graph.num_vertices, dtype=np.int64),
                    out_degrees,
                )
        return self._edge_src

    def _spill_edge_sources(self, out_degrees: np.ndarray) -> np.ndarray:
        """Per-edge source ids on disk, for memory-mapped (out-of-core)
        graphs whose edge arrays would not fit in RAM twice."""
        import tempfile
        from pathlib import Path

        from numpy.lib.format import open_memmap

        self._edge_src_spill = tempfile.TemporaryDirectory(prefix="repro-edge-src-")
        path = Path(self._edge_src_spill.name) / "edge_src.npy"
        spill = open_memmap(
            path, mode="w+", dtype=np.int64, shape=(int(self.graph.num_edges),)
        )
        indptr = self.graph.indptr
        n = self.graph.num_vertices
        chunk = 1 << 20
        for lo in range(0, n, chunk):
            hi = min(n, lo + chunk)
            spill[indptr[lo] : indptr[hi]] = np.repeat(
                np.arange(lo, hi, dtype=np.int64), out_degrees[lo:hi]
            )
        spill.flush()
        return spill

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_supersteps: int | None = None) -> ExecutionResult:
        """Run until global halt or the superstep cap."""
        cap = max_supersteps if max_supersteps is not None else self.max_supersteps
        halted = False
        while self.superstep < cap:
            if not self.step():
                halted = True
                break
        return self.result(halted_normally=halted)

    def step(self) -> bool:
        """Execute one superstep; returns True while work remains."""
        if self._tracer.enabled:
            return self._step_traced()
        if self.program.supports_dense:
            return self._step_dense()
        return self._step_scalar()

    def _step_traced(self) -> bool:
        """One superstep wrapped in a ``superstep`` span (wall clock)."""
        started = time.perf_counter()
        with self._tracer.span(
            "superstep", superstep=self.superstep, workers=self.num_workers
        ) as span:
            if self.program.supports_dense:
                more = self._step_dense()
            else:
                more = self._step_scalar()
            stats = self.stats[-1]
            span.set(
                active=stats.active_vertices,
                messages=stats.messages_sent,
                remote_bytes=stats.remote_bytes,
            )
        get_metrics().histogram(
            "superstep_wall_seconds", "Wall-clock seconds per engine superstep"
        ).observe(time.perf_counter() - started, workers=self.num_workers)
        return more

    def _step_scalar(self) -> bool:
        """Per-vertex compute path (arbitrary value/message types)."""
        program = self.program
        graph = self.graph
        owner = self._owner
        n = graph.num_vertices
        values = self._values
        halted = self._halted
        incoming = self._incoming
        outgoing = MessageStore(program.combiner, num_vertices=n)
        aggregators = {name: factory() for name, factory in program.aggregators().items()}

        ctx = ComputeContext()
        ctx.superstep = self.superstep
        ctx.num_vertices = n
        ctx._aggregators = aggregators
        ctx._prev_aggregates = self._prev_aggregates

        inc_mask = incoming.destination_mask(n)
        runnable = ~halted | inc_mask
        active = 0
        sent = local = remote = 0
        combiner = program.combiner

        for worker in self.workers:
            # Sender-side combining: one buffered slot per destination.
            send_buffer: dict[int, list] = {}
            wid = worker.worker_id
            own = worker.vertices
            run_ids = own[runnable[own]]
            for v, has_messages in zip(
                run_ids.tolist(), inc_mask[run_ids].tolist()
            ):
                halted[v] = False
                active += 1
                ctx.vertex_id = v
                ctx.value = values[v]
                ctx._out_edges = graph.neighbors(v)
                ctx._out_weights = graph.edge_weights(v)
                ctx._outbox = []
                ctx._halted = False
                program.compute(ctx, incoming.messages_for(v) if has_messages else [])
                values[v] = ctx.value
                halted[v] = ctx._halted
                sent += len(ctx._outbox)
                for dst, msg in ctx._outbox:
                    slot = send_buffer.get(dst)
                    if slot is None:
                        send_buffer[dst] = [msg]
                    elif combiner is not None:
                        slot[0] = combiner.combine(slot[0], msg)
                    else:
                        slot.append(msg)
            # Flush this worker's buffer across the (simulated) network.
            for dst, msgs in send_buffer.items():
                is_remote = owner[dst] != wid
                for msg in msgs:
                    outgoing.deliver(dst, msg)
                    if is_remote:
                        remote += 1
                    else:
                        local += 1
            del send_buffer

        self._finish_superstep(aggregators, outgoing, active, sent, local, remote)
        return bool(outgoing) or not bool(self._halted.all())

    def _step_dense(self) -> bool:
        """Batched array compute: serial in-process or multiprocess."""
        if self.execution == "parallel":
            backend = self._parallel_backend()
            if backend is not None:
                return backend.step(self)
        return self._step_dense_serial()

    def _parallel_backend(self):
        """The lazily-built multiprocess backend (None → serial fallback)."""
        if self._parallel is None and not self._parallel_unavailable:
            import weakref

            from repro.engine.parallel import (
                ParallelBackend,
                parallel_execution_supported,
            )

            if not parallel_execution_supported(self.program):
                self._parallel_unavailable = True
                if self._tracer.enabled:
                    self._tracer.event(
                        "engine.parallel.fallback", reason="unsupported"
                    )
                return None
            backend = ParallelBackend(
                graph=self.graph,
                program=self.program,
                owner=self._owner,
                num_workers=self.num_workers,
                values=self._values,
                halted=self._halted,
                edge_src=self._edge_sources(),
                num_processes=self._num_processes,
            )
            # The engine's state arrays now live in shared memory; rebind
            # so checkpoints/restores act on the arrays the workers see.
            self._values = backend.values
            self._halted = backend.halted
            for worker in self.workers:
                worker.attach(self._values, self._halted)
            self._parallel = backend
            self._finalizer = weakref.finalize(self, backend.shutdown)
        return self._parallel

    @property
    def parallel_active(self) -> bool:
        """Whether a multiprocess backend is currently attached."""
        return self._parallel is not None

    def close(self) -> None:
        """Release parallel-execution resources (idempotent).

        Serial engines are unaffected.  A closed parallel engine keeps
        its state (values/halted are copied out of shared memory first),
        so results remain readable; further parallel supersteps run the
        serial path.
        """
        if self._parallel is not None:
            backend, self._parallel = self._parallel, None
            self._parallel_unavailable = True
            self._values = self._values.copy()
            self._halted = self._halted.copy()
            for worker in self.workers:
                worker.attach(self._values, self._halted)
            backend.shutdown()
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None

    def __enter__(self) -> "PregelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _step_dense_serial(self) -> bool:
        """Batched array compute path (numeric values and messages)."""
        program = self.program
        graph = self.graph
        n = graph.num_vertices
        incoming = self._incoming
        inc_vals, inc_mask = incoming.dense_view(n)
        active_mask = ~self._halted | inc_mask
        aggregators = {name: factory() for name, factory in program.aggregators().items()}

        ctx = DenseComputeContext(
            superstep=self.superstep,
            graph=graph,
            values=self._values,
            active=active_mask,
            messages=inc_vals,
            has_message=inc_mask,
            edge_src=self._edge_sources(),
            aggregators=aggregators,
            prev_aggregates=self._prev_aggregates,
        )
        program.compute_dense(ctx)

        # Every vertex that ran is active next superstep unless it voted.
        self._halted[active_mask] = False
        self._halted |= ctx._halt_mask

        outgoing = MessageStore(program.combiner, num_vertices=n)
        sent = local = remote = 0
        if ctx._sends:
            if len(ctx._sends) == 1:
                src, dst, msg = ctx._sends[0]
            else:
                src = np.concatenate([s for s, _, _ in ctx._sends])
                dst = np.concatenate([d for _, d, _ in ctx._sends])
                msg = np.concatenate([m for _, _, m in ctx._sends])
            sent = len(dst)
            outgoing.deliver_many(dst, msg)
            # Traffic accounting after sender-side combining: one network
            # message per distinct (source worker, destination) pair.
            slot_key = self._owner[src] * np.int64(n) + dst
            slots = np.unique(slot_key)
            slot_worker = slots // n
            slot_dst = slots % n
            remote = int(np.count_nonzero(self._owner[slot_dst] != slot_worker))
            local = len(slots) - remote

        active = int(np.count_nonzero(active_mask))
        self._finish_superstep(aggregators, outgoing, active, sent, local, remote)
        return bool(outgoing) or not bool(self._halted.all())

    def _finish_superstep(
        self, aggregators, outgoing, active, sent, local, remote
    ) -> None:
        self.stats.append(
            SuperstepStats(
                superstep=self.superstep,
                active_vertices=active,
                messages_sent=sent,
                local_messages=local,
                remote_messages=remote,
                remote_bytes=remote * self.program.message_bytes,
            )
        )
        self._prev_aggregates = {name: agg.value for name, agg in aggregators.items()}
        self._incoming = outgoing
        self.superstep += 1

    # ------------------------------------------------------------------
    # Results and state
    # ------------------------------------------------------------------
    def has_work(self) -> bool:
        """Whether any message is pending or any vertex is still active."""
        return bool(self._incoming) or not bool(self._halted.all())

    def values(self) -> dict:
        """Current vertex values keyed by global vertex id."""
        return dict(enumerate(self._values.tolist()))

    def result(self, halted_normally: bool) -> ExecutionResult:
        """Snapshot the current outcome as an ExecutionResult."""
        return ExecutionResult(
            values=self.values(),
            supersteps_run=self.superstep,
            halted_normally=halted_normally,
            stats=list(self.stats),
            aggregates=dict(self._prev_aggregates),
        )

    # ------------------------------------------------------------------
    # Checkpoint hooks (see repro.engine.checkpoint)
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Snapshot of everything needed to resume this computation.

        The state arrays are serialized directly (no per-vertex dicts);
        per-superstep stats ride along so a restored engine reports the
        same history as the one that wrote the checkpoint.
        """
        return {
            "format": 2,
            "superstep": self.superstep,
            "num_vertices": self.graph.num_vertices,
            "values": self._values.copy(),
            "halted": self._halted.copy(),
            "pending_messages": self._incoming.state_dict(),
            "prev_aggregates": dict(self._prev_aggregates),
            "stats": list(self.stats),
        }

    def restore_state(self, state: dict) -> None:
        """Resume from a :meth:`capture_state` snapshot.

        The worker layout may differ from the snapshot's (the whole point
        of Hourglass reconfiguration): state arrays are global, so the
        new workers simply see the restored arrays through their own
        vertex sets.  Also accepts the legacy per-worker dict format.
        """
        n = self.graph.num_vertices
        if "values" in state:
            values = np.asarray(state["values"])
            halted = np.asarray(state["halted"], dtype=bool)
            if len(values) != n or len(halted) != n:
                raise ValueError(
                    f"snapshot covers {len(values)} vertices, graph has {n}"
                )
            self._values[...] = values
            self._halted[...] = halted
            self._incoming = MessageStore.from_state(
                state["pending_messages"], self.program.combiner
            )
        else:  # legacy: per-worker {vertex: value} dicts
            merged_values: dict = {}
            merged_halted: dict = {}
            for snap in state["workers"]:
                merged_values.update(snap["values"])
                merged_halted.update(snap["halted"])
            if len(merged_values) != n:
                raise ValueError(
                    f"snapshot covers {len(merged_values)} vertices, graph has {n}"
                )
            for v, value in merged_values.items():
                self._values[int(v)] = value
            for v, flag in merged_halted.items():
                self._halted[int(v)] = bool(flag)
            self._incoming = MessageStore.from_dict(
                state["pending_messages"],
                self.program.combiner,
                num_vertices=n,
            )
        self.superstep = int(state["superstep"])
        # Keep the superstep history consistent with the restored counter:
        # a checkpoint at superstep s carries exactly s stats records.
        if "stats" in state:
            self.stats = [
                s if isinstance(s, SuperstepStats) else SuperstepStats(*s)
                for s in state["stats"]
            ][: self.superstep]
        else:
            # Legacy per-worker snapshots never recorded superstep
            # statistics, so a fresh engine restoring one would report an
            # empty frontier series while claiming superstep > 0.  Keep
            # whatever real history this engine has up to the restored
            # counter and backfill the rest from the restored state: the
            # active set at the checkpoint is the non-halted vertices
            # plus any halted ones woken by a pending message.  Message
            # totals are genuinely lost and stay 0.
            self.stats = self.stats[: self.superstep]
            if len(self.stats) < self.superstep:
                runnable = ~self._halted | self._incoming.destination_mask(n)
                active = int(np.count_nonzero(runnable))
                for step in range(len(self.stats), self.superstep):
                    self.stats.append(
                        SuperstepStats(
                            superstep=step,
                            active_vertices=active,
                            messages_sent=0,
                            local_messages=0,
                            remote_messages=0,
                            remote_bytes=0,
                        )
                    )
        self._prev_aggregates = dict(state["prev_aggregates"])
