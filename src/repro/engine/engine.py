"""The Pregel-style BSP execution engine (the Giraph stand-in).

Runs a :class:`~repro.engine.vertex.VertexProgram` over a partitioned
graph in synchronous supersteps across simulated workers.  Messages are
combined at the sender (when the program declares a combiner), routed to
their destination worker, and delivered at the next barrier; aggregators
are reduced at the barrier and broadcast to the next superstep, exactly
following the Pregel/Giraph model the paper runs on.

The engine tracks per-superstep statistics — active vertices, local vs
remote messages, estimated network bytes — which is how partition
quality translates into simulated execution time (cut edges ⇒ remote
messages ⇒ network cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.messages import MessageStore
from repro.engine.vertex import ComputeContext, VertexProgram
from repro.engine.worker import Worker, build_workers
from repro.graph.graph import Graph
from repro.partitioning.base import Partitioning


@dataclass(frozen=True)
class SuperstepStats:
    """Observability record for one superstep."""

    superstep: int
    active_vertices: int
    messages_sent: int
    local_messages: int
    remote_messages: int
    remote_bytes: int

    @property
    def remote_fraction(self) -> float:
        """Fraction of message traffic that crossed workers."""
        total = self.local_messages + self.remote_messages
        return self.remote_messages / total if total else 0.0


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of a full run (or a run segment)."""

    values: dict
    supersteps_run: int
    halted_normally: bool
    stats: list[SuperstepStats]
    aggregates: dict

    @property
    def total_messages(self) -> int:
        """Messages sent across all supersteps."""
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_remote_messages(self) -> int:
        """Cross-worker messages across all supersteps."""
        return sum(s.remote_messages for s in self.stats)

    def values_array(self, dtype=np.float64) -> np.ndarray:
        """Vertex values as a dense array indexed by vertex id."""
        arr = np.empty(len(self.values), dtype=dtype)
        for vid, val in self.values.items():
            arr[vid] = val
        return arr


class PregelEngine:
    """Synchronous vertex-centric engine over simulated workers.

    Args:
        graph: the input graph (message topology = out-edges).
        program: the vertex program to run.
        partitioning: vertex -> worker assignment; its ``num_parts`` is
            the worker count.
        max_supersteps: safety cap (default 10_000).
    """

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        partitioning: Partitioning | None = None,
        max_supersteps: int = 10_000,
    ):
        if partitioning is None:
            from repro.partitioning.hashing import HashPartitioner

            partitioning = HashPartitioner().partition(graph, 1)
        if partitioning.num_vertices != graph.num_vertices:
            raise ValueError("partitioning does not match graph")
        if max_supersteps < 1:
            raise ValueError("max_supersteps must be >= 1")
        self.graph = graph
        self.program = program
        self.partitioning = partitioning
        self.max_supersteps = max_supersteps
        self.num_workers = partitioning.num_parts
        self.workers: list[Worker] = build_workers(partitioning, self.num_workers)
        self._owner = partitioning.assignment  # vertex -> worker
        self.superstep = 0
        self.stats: list[SuperstepStats] = []
        self._incoming = MessageStore(program.combiner)
        self._prev_aggregates: dict = {}
        for worker in self.workers:
            worker.initialize(program, graph.num_vertices)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_supersteps: int | None = None) -> ExecutionResult:
        """Run until global halt or the superstep cap."""
        cap = max_supersteps if max_supersteps is not None else self.max_supersteps
        halted = False
        while self.superstep < cap:
            if not self.step():
                halted = True
                break
        return self.result(halted_normally=halted)

    def step(self) -> bool:
        """Execute one superstep; returns True while work remains."""
        program = self.program
        graph = self.graph
        owner = self._owner
        incoming = self._incoming
        outgoing = MessageStore(program.combiner)
        aggregators = {name: factory() for name, factory in program.aggregators().items()}

        ctx = ComputeContext()
        ctx.superstep = self.superstep
        ctx.num_vertices = graph.num_vertices
        ctx._aggregators = aggregators
        ctx._prev_aggregates = self._prev_aggregates

        incoming_dsts = set(incoming.destinations())
        active = 0
        sent = local = remote = remote_combined = 0

        for worker in self.workers:
            # Sender-side combining: one buffered slot per destination.
            send_buffer: dict[int, list] = {}
            wid = worker.worker_id
            for v in worker.vertices:
                v = int(v)
                has_messages = v in incoming_dsts
                if worker.halted[v] and not has_messages:
                    continue
                worker.halted[v] = False
                active += 1
                ctx.vertex_id = v
                ctx.value = worker.values[v]
                ctx._out_edges = graph.neighbors(v)
                ctx._out_weights = graph.edge_weights(v)
                ctx._outbox = []
                ctx._halted = False
                program.compute(ctx, incoming.messages_for(v) if has_messages else [])
                worker.values[v] = ctx.value
                worker.halted[v] = ctx._halted
                sent += len(ctx._outbox)
                combiner = program.combiner
                for dst, msg in ctx._outbox:
                    slot = send_buffer.get(dst)
                    if slot is None:
                        send_buffer[dst] = [msg]
                    elif combiner is not None:
                        slot[0] = combiner.combine(slot[0], msg)
                    else:
                        slot.append(msg)
            # Flush this worker's buffer across the (simulated) network.
            for dst, msgs in send_buffer.items():
                is_remote = owner[dst] != wid
                for msg in msgs:
                    outgoing.deliver(dst, msg)
                    if is_remote:
                        remote_combined += 1
                    else:
                        local += 1
            del send_buffer

        remote = remote_combined
        self.stats.append(
            SuperstepStats(
                superstep=self.superstep,
                active_vertices=active,
                messages_sent=sent,
                local_messages=local,
                remote_messages=remote,
                remote_bytes=remote * program.message_bytes,
            )
        )
        self._prev_aggregates = {name: agg.value for name, agg in aggregators.items()}
        self._incoming = outgoing
        self.superstep += 1
        return bool(outgoing) or any(
            not halted for worker in self.workers for halted in worker.halted.values()
        )

    # ------------------------------------------------------------------
    # Results and state
    # ------------------------------------------------------------------
    def values(self) -> dict:
        """Current vertex values keyed by global vertex id."""
        merged: dict = {}
        for worker in self.workers:
            merged.update(worker.values)
        return merged

    def result(self, halted_normally: bool) -> ExecutionResult:
        """Snapshot the current outcome as an ExecutionResult."""
        return ExecutionResult(
            values=self.values(),
            supersteps_run=self.superstep,
            halted_normally=halted_normally,
            stats=list(self.stats),
            aggregates=dict(self._prev_aggregates),
        )

    # ------------------------------------------------------------------
    # Checkpoint hooks (see repro.engine.checkpoint)
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Snapshot of everything needed to resume this computation."""
        return {
            "superstep": self.superstep,
            "workers": [w.state_snapshot() for w in self.workers],
            "pending_messages": self._incoming.as_dict(),
            "prev_aggregates": dict(self._prev_aggregates),
        }

    def restore_state(self, state: dict) -> None:
        """Resume from a :meth:`capture_state` snapshot.

        The worker layout may differ from the snapshot's (the whole point
        of Hourglass reconfiguration): values/halted flags are re-scattered
        to whichever worker now owns each vertex.
        """
        values: dict = {}
        halted: dict = {}
        for snap in state["workers"]:
            values.update(snap["values"])
            halted.update(snap["halted"])
        if len(values) != self.graph.num_vertices:
            raise ValueError(
                f"snapshot covers {len(values)} vertices, graph has "
                f"{self.graph.num_vertices}"
            )
        for worker in self.workers:
            worker.values = {int(v): values[int(v)] for v in worker.vertices}
            worker.halted = {int(v): halted[int(v)] for v in worker.vertices}
        self.superstep = int(state["superstep"])
        self._incoming = MessageStore.from_dict(
            state["pending_messages"], self.program.combiner
        )
        self._prev_aggregates = dict(state["prev_aggregates"])
