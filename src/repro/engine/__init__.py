"""Pregel-style BSP graph processing engine (the Giraph stand-in)."""

from repro.engine.aggregators import (
    Aggregator,
    AndAggregator,
    MaxAggregator,
    MinAggregator,
    OrAggregator,
    SumAggregator,
)
from repro.engine.checkpoint import (
    CheckpointCorruptionError,
    CheckpointInfo,
    CheckpointManager,
)
from repro.engine.datastore import DataStore, TransferStats
from repro.engine.engine import ExecutionResult, PregelEngine, SuperstepStats
from repro.engine.loader import (
    HashLoader,
    LoadResult,
    LoadTimingModel,
    MicroLoader,
    StreamLoader,
)
from repro.engine.metrics import (
    ClusterTimingModel,
    estimate_execution_time,
    fit_sync_penalty,
)
from repro.engine.messages import (
    Combiner,
    MaxCombiner,
    MessageStore,
    MinCombiner,
    SumCombiner,
)
from repro.engine.parallel import ParallelPregelEngine, parallel_execution_supported
from repro.engine.vertex import ComputeContext, DenseComputeContext, VertexProgram
from repro.engine.worker import Worker, build_workers

__all__ = [
    "Aggregator",
    "AndAggregator",
    "CheckpointCorruptionError",
    "CheckpointInfo",
    "CheckpointManager",
    "ClusterTimingModel",
    "Combiner",
    "ComputeContext",
    "DataStore",
    "DenseComputeContext",
    "estimate_execution_time",
    "fit_sync_penalty",
    "ExecutionResult",
    "HashLoader",
    "LoadResult",
    "LoadTimingModel",
    "MaxAggregator",
    "MaxCombiner",
    "MessageStore",
    "MicroLoader",
    "MinAggregator",
    "MinCombiner",
    "OrAggregator",
    "ParallelPregelEngine",
    "parallel_execution_supported",
    "PregelEngine",
    "StreamLoader",
    "SumAggregator",
    "SumCombiner",
    "SuperstepStats",
    "TransferStats",
    "VertexProgram",
    "Worker",
    "build_workers",
]
