"""Engine scale-out smoke check: parallel bit-identity + delta restore.

``python -m repro.engine.scale_smoke`` is the blocking CI gate for the
scale-out machinery.  It exercises the full out-of-core path end to end
on a small graph:

1. streams an RMAT graph into an on-disk CSR store (multiple batches,
   two-pass build) and memory-maps it back,
2. runs SSSP and PageRank through both the serial and the shared-memory
   multiprocess engine and checks the results are **bit-identical**
   (values, per-superstep stats, superstep counts),
3. saves a full + delta checkpoint chain mid-run, restores it into a
   fresh engine, resumes, and checks the finished run matches an
   uninterrupted reference exactly.

Exit code 0 = every check passed; any mismatch prints a ``FAIL`` line
and exits 1.  On platforms without ``fork`` the parallel checks degrade
to the serial fallback path (which must still be exact).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np


def _check(name: str, ok: bool, detail: str = "") -> bool:
    status = "ok  " if ok else "FAIL"
    suffix = f" ({detail})" if detail else ""
    print(f"[{status}] {name}{suffix}")
    return ok


def run_smoke(scale: int, num_workers: int, seed: int, directory) -> bool:
    """Run every scale-out check; returns True when all pass."""
    from repro.engine import CheckpointManager, DataStore, PregelEngine
    from repro.engine.algorithms import SSSP, PageRank
    from repro.engine.parallel import parallel_execution_supported
    from repro.graph.io import build_rmat_csr, is_memmap_backed
    from repro.partitioning.hashing import HashPartitioner

    ok = True

    # 1. Out-of-core build: stream in small batches to force several
    # passes through the scatter path, then memory-map the result.
    graph = build_rmat_csr(
        scale, Path(directory) / "csr", seed=seed, batch_edges=1 << 12
    )
    ok &= _check(
        "csr store is memory-mapped",
        is_memmap_backed(graph.indices),
        f"{graph.num_vertices:,} vertices, {graph.num_edges:,} edges",
    )
    partitioning = HashPartitioner().partition(graph, num_workers)

    # 2. Serial-vs-parallel bit-identity on both message shapes
    # (min-combined SSSP, sum-combined PageRank).
    if not parallel_execution_supported():
        print("[warn] fork unavailable; parallel checks use the serial fallback")
    for label, make_program in (
        ("sssp", lambda: SSSP(source=0)),
        ("pagerank", lambda: PageRank(iterations=8)),
    ):
        serial = PregelEngine(graph, make_program(), partitioning).run()
        with PregelEngine(
            graph, make_program(), partitioning, execution="parallel"
        ) as engine:
            parallel = engine.run()
        ok &= _check(
            f"{label}: parallel matches serial bit-for-bit",
            serial.supersteps_run == parallel.supersteps_run
            and np.array_equal(serial.values_array(), parallel.values_array())
            and serial.stats == parallel.stats,
            f"{serial.supersteps_run} supersteps",
        )

    # 3. Delta checkpoint chain: full + delta saved mid-run from the
    # parallel engine, restored serially, resumed to completion.
    reference = PregelEngine(graph, PageRank(iterations=8), partitioning).run()
    store = DataStore()
    manager = CheckpointManager(store, "scale-smoke", delta=True, full_interval=8)
    with PregelEngine(
        graph, PageRank(iterations=8), partitioning, execution="parallel"
    ) as engine:
        engine.step()
        engine.step()
        manager.save(engine)  # full base
        engine.step()
        delta_info = manager.save(engine)  # delta against it
    ok &= _check(
        "second checkpoint is a delta",
        delta_info.kind == "delta",
        f"{delta_info.nbytes:,} bytes",
    )
    resumed = PregelEngine(graph, PageRank(iterations=8), partitioning)
    manager.load_into(resumed)
    result = resumed.run()
    ok &= _check(
        "delta restore resumes to the exact reference result",
        resumed.superstep == reference.supersteps_run
        and np.array_equal(reference.values_array(), result.values_array())
        and reference.stats == result.stats,
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.scale_smoke", description=__doc__
    )
    parser.add_argument("--scale", type=int, default=10, help="RMAT scale (2^scale vertices)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="scale-smoke-") as tmp:
        ok = run_smoke(args.scale, args.workers, args.seed, tmp)
    print("scale-out smoke:", "all checks passed" if ok else "CHECKS FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
