"""Message combiners and the per-superstep message store.

A *combiner* merges messages addressed to the same vertex before they
cross the (simulated) network, exactly like Giraph/Pregel combiners:
PageRank sums contributions, SSSP keeps the minimum tentative distance.
Combining at the sender both shrinks network traffic (tracked by the
engine's stats) and the receiver's work.

The store itself has two representations and picks per delivery:

* a **dense** one — a ``float64`` value array plus a boolean mask, both
  indexed by global vertex id — fed by the batched
  :meth:`MessageStore.deliver_many` path.  Combining happens with the
  combiner's numpy ufunc (``np.add.at`` / ``np.minimum.at`` /
  ``np.maximum.at``), which is what makes large supersteps cheap;
* a **generic** one — per-destination Python lists — for exotic message
  types (tuples, adjacency fragments) and for the scalar
  :meth:`MessageStore.deliver` API.

Both representations may coexist (e.g. after restoring a checkpoint);
every read path merges them.
"""

from __future__ import annotations

import abc
import numbers
from collections import defaultdict
from typing import Iterable

import numpy as np


class Combiner(abc.ABC):
    """Associative, commutative merge of two messages for one vertex.

    Subclasses may set :attr:`ufunc` to the equivalent numpy ufunc; the
    message store then combines numeric batches without touching Python.
    """

    #: Optional numpy ufunc implementing the same reduction.
    ufunc = None
    #: Identity element of :attr:`ufunc` (start value for reductions).
    identity = None

    @staticmethod
    @abc.abstractmethod
    def combine(a, b):
        """Merge two messages into one."""


class SumCombiner(Combiner):
    """Combine messages by addition (PageRank-style)."""

    ufunc = np.add
    identity = 0.0

    @staticmethod
    def combine(a, b):
        """Merge two messages into one (see class docstring)."""
        return a + b


class MinCombiner(Combiner):
    """Keep the smaller message (SSSP-style)."""

    ufunc = np.minimum
    identity = np.inf

    @staticmethod
    def combine(a, b):
        """Merge two messages into one (see class docstring)."""
        return a if a <= b else b


class MaxCombiner(Combiner):
    """Keep the larger message."""

    ufunc = np.maximum
    identity = -np.inf

    @staticmethod
    def combine(a, b):
        """Merge two messages into one (see class docstring)."""
        return a if a >= b else b


class MessageStore:
    """Holds messages grouped by destination vertex for one superstep.

    Args:
        combiner: optional :class:`Combiner` subclass applied eagerly.
        num_vertices: global vertex count; required for the dense
            batched path (:meth:`deliver_many` falls back to scalar
            delivery without it).
    """

    def __init__(
        self, combiner: type[Combiner] | None = None, num_vertices: int | None = None
    ):
        self._combiner = combiner
        self._num_vertices = num_vertices
        self._by_dst: dict[int, list] = defaultdict(list)
        self._dense_values: np.ndarray | None = None
        self._dense_mask: np.ndarray | None = None
        self._count = 0

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def deliver(self, dst: int, message) -> None:
        """Add one message for *dst*, combining eagerly when possible."""
        self._count += 1
        self._deliver_generic(dst, message)

    def _deliver_generic(self, dst: int, message) -> None:
        # Fold a dense entry for the same destination into the bucket
        # first, so each destination lives in exactly one representation.
        bucket = self._by_dst[dst]
        if (
            not bucket
            and self._dense_mask is not None
            and self._dense_mask[dst]
        ):
            bucket.append(self._dense_values[dst].item())
            self._dense_mask[dst] = False
        if self._combiner is not None and bucket:
            bucket[0] = self._combiner.combine(bucket[0], message)
        else:
            bucket.append(message)

    def deliver_many(self, dst_array, msg_array) -> None:
        """Deliver a batch of messages, combining with the ufunc.

        ``dst_array`` and ``msg_array`` are parallel 1-D arrays.  Numeric
        batches with a ufunc-capable combiner go through the dense path;
        anything else degrades to per-message scalar delivery.  Dense
        message values are held as ``float64`` (exact for the integer
        labels/counts the built-in programs exchange).
        """
        dst = np.asarray(dst_array, dtype=np.int64)
        msgs = np.asarray(msg_array)
        if dst.ndim != 1 or msgs.ndim != 1 or dst.shape != msgs.shape:
            raise ValueError(
                f"dst and message arrays must be parallel 1-D, got "
                f"{dst.shape} and {msgs.shape}"
            )
        if not len(dst):
            return
        combiner = self._combiner
        dense_ok = (
            combiner is not None
            and combiner.ufunc is not None
            and self._num_vertices is not None
            and np.issubdtype(msgs.dtype, np.number)
        )
        self._count += len(dst)
        if not dense_ok:
            for d, m in zip(dst.tolist(), msgs.tolist()):
                self._deliver_generic(d, m)
            return
        if self._dense_values is None:
            self._dense_values = np.full(
                self._num_vertices, combiner.identity, dtype=np.float64
            )
            self._dense_mask = np.zeros(self._num_vertices, dtype=bool)
        combiner.ufunc.at(self._dense_values, dst, msgs.astype(np.float64, copy=False))
        self._dense_mask[dst] = True
        if self._by_dst:
            # Fold pre-existing generic entries for these destinations in.
            for d in np.unique(dst).tolist():
                bucket = self._by_dst.get(d)
                if bucket:
                    for m in bucket:
                        self._dense_values[d] = combiner.combine(
                            self._dense_values[d].item(), m
                        )
                    del self._by_dst[d]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def messages_for(self, dst: int) -> list:
        """Messages addressed to *dst* (empty list when none).

        Returns a fresh list: mutating the returned inbox does not
        corrupt the pending messages.
        """
        out = list(self._by_dst.get(dst, ()))
        if self._dense_mask is not None and self._dense_mask[dst]:
            out.append(self._dense_values[dst].item())
            if self._combiner is not None and len(out) > 1:
                folded = out[0]
                for m in out[1:]:
                    folded = self._combiner.combine(folded, m)
                out = [folded]
        return out

    def destinations(self) -> Iterable[int]:
        """Vertices with at least one pending message."""
        dests = [d for d, bucket in self._by_dst.items() if bucket]
        if self._dense_mask is not None:
            dests.extend(int(d) for d in np.flatnonzero(self._dense_mask))
        return dests

    def destination_mask(self, num_vertices: int) -> np.ndarray:
        """Boolean mask over ``[0, num_vertices)`` of pending destinations."""
        if self._dense_mask is not None:
            mask = self._dense_mask.copy()
        else:
            mask = np.zeros(num_vertices, dtype=bool)
        keys = [d for d, bucket in self._by_dst.items() if bucket]
        if keys:
            mask[np.asarray(keys, dtype=np.int64)] = True
        return mask

    def dense_view(self, num_vertices: int) -> tuple[np.ndarray, np.ndarray]:
        """Combined messages as ``(values, mask)`` float64/bool arrays.

        Used by the engine's batched compute path.  Generic entries are
        folded in with the combiner; non-numeric pending messages make
        this raise ``TypeError`` (such programs run the scalar path).
        """
        if self._dense_values is not None:
            values = self._dense_values.copy()
            mask = self._dense_mask.copy()
        else:
            identity = self._combiner.identity if self._combiner else 0.0
            values = np.full(num_vertices, identity or 0.0, dtype=np.float64)
            mask = np.zeros(num_vertices, dtype=bool)
        self._fold_generic_into(values, mask)
        return values, mask

    def dense_view_into(
        self, num_vertices: int, values_out: np.ndarray, mask_out: np.ndarray
    ) -> None:
        """:meth:`dense_view` written into caller-provided arrays.

        Allocation-free variant used by the parallel backend to refill
        its shared-memory inbox arrays in place every superstep.
        """
        if self._dense_values is not None:
            values_out[...] = self._dense_values
            mask_out[...] = self._dense_mask
        else:
            identity = self._combiner.identity if self._combiner else 0.0
            values_out[...] = identity or 0.0
            mask_out[...] = False
        self._fold_generic_into(values_out, mask_out)

    def _fold_generic_into(self, values: np.ndarray, mask: np.ndarray) -> None:
        """Fold the generic per-destination buckets into a dense view."""
        for dst, bucket in self._by_dst.items():
            if not bucket:
                continue
            folded = bucket[0]
            for m in bucket[1:]:
                if self._combiner is None:
                    raise TypeError(
                        "dense view needs a combiner for multi-message inboxes"
                    )
                folded = self._combiner.combine(folded, m)
            if not isinstance(folded, numbers.Number):
                raise TypeError(
                    f"non-numeric message {folded!r} cannot enter the dense path"
                )
            if mask[dst] and self._combiner is not None:
                folded = self._combiner.combine(values[dst].item(), folded)
            values[dst] = folded
            mask[dst] = True

    def __len__(self) -> int:
        """Number of *stored* messages (post-combining)."""
        stored = sum(len(v) for v in self._by_dst.values())
        if self._dense_mask is not None:
            stored += int(np.count_nonzero(self._dense_mask))
        return stored

    def __bool__(self) -> bool:
        if any(self._by_dst.values()):
            return True
        return self._dense_mask is not None and bool(self._dense_mask.any())

    def raw_count(self) -> int:
        """Messages delivered before combining."""
        return self._count

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[int, list]:
        """Snapshot as ``{destination: [messages]}`` (legacy format)."""
        merged = {dst: list(msgs) for dst, msgs in self._by_dst.items() if msgs}
        if self._dense_mask is not None:
            for d in np.flatnonzero(self._dense_mask).tolist():
                merged.setdefault(d, []).append(self._dense_values[d].item())
        return merged

    @classmethod
    def from_dict(
        cls,
        data: dict[int, list],
        combiner: type[Combiner] | None = None,
        raw_count: int | None = None,
        num_vertices: int | None = None,
    ) -> "MessageStore":
        """Rebuild a store from an :meth:`as_dict` snapshot.

        ``raw_count`` restores the pre-combining delivery counter; when
        omitted it is taken as the number of stored (post-combining)
        messages, which under-reports if the snapshot was combined.
        """
        store = cls(combiner, num_vertices=num_vertices)
        for dst, msgs in data.items():
            for msg in msgs:
                store.deliver(int(dst), msg)
        if raw_count is not None:
            store._count = int(raw_count)
        return store

    def state_dict(self) -> dict:
        """Checkpointable snapshot carrying the arrays directly."""
        return {
            "generic": {dst: list(msgs) for dst, msgs in self._by_dst.items() if msgs},
            "dense_values": (
                self._dense_values.copy() if self._dense_values is not None else None
            ),
            "dense_mask": (
                self._dense_mask.copy() if self._dense_mask is not None else None
            ),
            "count": self._count,
            "num_vertices": self._num_vertices,
        }

    @classmethod
    def from_state(
        cls, state: dict, combiner: type[Combiner] | None = None
    ) -> "MessageStore":
        """Rebuild a store from a :meth:`state_dict` snapshot."""
        store = cls(combiner, num_vertices=state.get("num_vertices"))
        for dst, msgs in state["generic"].items():
            store._by_dst[int(dst)] = list(msgs)
        if state["dense_values"] is not None:
            store._dense_values = np.array(state["dense_values"], dtype=np.float64)
            store._dense_mask = np.array(state["dense_mask"], dtype=bool)
        store._count = int(state["count"])
        return store
