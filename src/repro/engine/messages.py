"""Message combiners and the per-superstep message store.

A *combiner* merges messages addressed to the same vertex before they
cross the (simulated) network, exactly like Giraph/Pregel combiners:
PageRank sums contributions, SSSP keeps the minimum tentative distance.
Combining at the sender both shrinks network traffic (tracked by the
engine's stats) and the receiver's work.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from typing import Iterable


class Combiner(abc.ABC):
    """Associative, commutative merge of two messages for one vertex."""

    @staticmethod
    @abc.abstractmethod
    def combine(a, b):
        """Merge two messages into one."""


class SumCombiner(Combiner):
    """Combine messages by addition (PageRank-style)."""

    @staticmethod
    def combine(a, b):
        """Merge two messages into one (see class docstring)."""
        return a + b


class MinCombiner(Combiner):
    """Keep the smaller message (SSSP-style)."""

    @staticmethod
    def combine(a, b):
        """Merge two messages into one (see class docstring)."""
        return a if a <= b else b


class MaxCombiner(Combiner):
    """Keep the larger message."""

    @staticmethod
    def combine(a, b):
        """Merge two messages into one (see class docstring)."""
        return a if a >= b else b


class MessageStore:
    """Holds messages grouped by destination vertex for one superstep."""

    def __init__(self, combiner: type[Combiner] | None = None):
        self._combiner = combiner
        self._by_dst: dict[int, list] = defaultdict(list)
        self._count = 0

    def deliver(self, dst: int, message) -> None:
        """Add one message for *dst*, combining eagerly when possible."""
        bucket = self._by_dst[dst]
        if self._combiner is not None and bucket:
            bucket[0] = self._combiner.combine(bucket[0], message)
        else:
            bucket.append(message)
        self._count += 1

    def messages_for(self, dst: int) -> list:
        """Messages addressed to *dst* (empty list when none)."""
        return self._by_dst.get(dst, [])

    def destinations(self) -> Iterable[int]:
        """Vertices with at least one pending message."""
        return self._by_dst.keys()

    def __len__(self) -> int:
        """Number of *stored* messages (post-combining)."""
        return sum(len(v) for v in self._by_dst.values())

    def __bool__(self) -> bool:
        return bool(self._by_dst)

    def raw_count(self) -> int:
        """Messages delivered before combining."""
        return self._count

    def as_dict(self) -> dict[int, list]:
        """Snapshot for checkpointing."""
        return {dst: list(msgs) for dst, msgs in self._by_dst.items()}

    @classmethod
    def from_dict(
        cls, data: dict[int, list], combiner: type[Combiner] | None = None
    ) -> "MessageStore":
        """Rebuild a store from a checkpoint snapshot."""
        store = cls(combiner)
        for dst, msgs in data.items():
            for msg in msgs:
                store.deliver(int(dst), msg)
        return store
