"""Graph loading strategies and their timing model (paper §6.1, Fig 6).

Three loaders, mirroring the paper's measurement:

* **StreamLoader** — a single master machine reads and parses the entire
  (text) dataset, then assigns vertices; models stream-based partitioners
  with centralized loading logic.  Time grows linearly with dataset size
  regardless of the deployment.
* **HashLoader** — all workers read and parse text chunks in parallel,
  then shuffle every entity to its hash owner over the network.  Parallel
  read, but an all-to-all exchange of ~``(1 - 1/w)`` of the graph.
* **MicroLoader** — Hourglass's fast reload: workers read only their own
  *pre-partitioned binary* micro-partition chunks.  Fully parallel,
  no network exchange, no text parsing, and valid for **any** worker
  count thanks to the micro-partition clustering (parallel recovery).

Each loader both (a) functionally produces the partitioning/per-worker
ownership used by the engine and (b) reports a *simulated* loading time
from :class:`LoadTimingModel`.  The timing model is driven by dataset
byte counts so experiments can evaluate paper-scale datasets while
functionally loading repro-scale graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.datastore import DataStore
from repro.graph.graph import Graph
from repro.graph.io import csr_nbytes, is_memmap_backed
from repro.partitioning.base import Partitioning
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.micro import MicroPartitioning
from repro.utils.units import MiB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LoadTimingModel:
    """Constants behind the loading-time estimates.

    Defaults approximate the paper's EC2/S3 environment: ~100 MiB/s
    single-stream storage reads, text parsing as the CPU bottleneck, and
    a shared 1 GbE-class network per machine for shuffles.

    Attributes:
        read_bandwidth: per-machine storage read throughput (bytes/s).
        parse_rate: per-machine text parse throughput (bytes/s).
        network_bandwidth: per-machine network throughput (bytes/s).
        per_edge_shuffle_cpu: CPU seconds per shuffled edge
            (serialize + deserialize + object churn).
        text_bytes_per_edge: average edge-list text footprint.
        binary_bytes_per_edge: binary CSR footprint per edge.
        fixed_overhead: constant per-load coordination cost (seconds).
    """

    read_bandwidth: float = 100 * MiB
    parse_rate: float = 12 * MiB
    network_bandwidth: float = 120 * MiB
    per_edge_shuffle_cpu: float = 500e-9
    text_bytes_per_edge: float = 15.0
    binary_bytes_per_edge: float = 8.0
    fixed_overhead: float = 2.0

    def text_bytes(self, num_edges: int, num_vertices: int) -> float:
        """Edge-list text size of a dataset."""
        return self.text_bytes_per_edge * num_edges

    def binary_bytes(self, num_edges: int, num_vertices: int) -> float:
        """Binary CSR size of a dataset."""
        return self.binary_bytes_per_edge * num_edges + 8.0 * (num_vertices + 1)

    # -- per-strategy estimates ----------------------------------------
    def stream_time(self, num_edges: int, num_vertices: int, num_workers: int) -> float:
        """Single-master read + parse of the whole text dataset."""
        self._check(num_workers)
        text = self.text_bytes(num_edges, num_vertices)
        return self.fixed_overhead + text / self.read_bandwidth + text / self.parse_rate

    def hash_time(self, num_edges: int, num_vertices: int, num_workers: int) -> float:
        """Parallel read/parse plus the all-to-all shuffle."""
        self._check(num_workers)
        w = num_workers
        text = self.text_bytes(num_edges, num_vertices)
        read = text / (w * self.read_bandwidth)
        parse = text / (w * self.parse_rate)
        moved_edges = num_edges * (1.0 - 1.0 / w)
        moved_bytes = moved_edges * self.binary_bytes_per_edge
        # Each machine both sends and receives its share of the shuffle.
        network = 2.0 * moved_bytes / (w * self.network_bandwidth)
        shuffle_cpu = moved_edges * self.per_edge_shuffle_cpu / w
        return self.fixed_overhead + read + parse + network + shuffle_cpu

    def micro_time(self, num_edges: int, num_vertices: int, num_workers: int) -> float:
        """Parallel, shuffle-free read of pre-partitioned binary chunks."""
        self._check(num_workers)
        w = num_workers
        binary = self.binary_bytes(num_edges, num_vertices)
        return self.fixed_overhead + binary / (w * self.read_bandwidth)

    def micro_time_bytes(self, nbytes: float, num_workers: int) -> float:
        """Parallel binary read of an on-disk CSR of *known* byte size.

        Used for memory-mapped CSR stores, where the true footprint is
        available instead of the per-edge estimate.
        """
        self._check(num_workers)
        return self.fixed_overhead + nbytes / (num_workers * self.read_bandwidth)

    def estimate(self, strategy: str, num_edges: int, num_vertices: int, num_workers: int) -> float:
        """Dispatch by strategy name ('stream' | 'hash' | 'micro')."""
        table = {
            "stream": self.stream_time,
            "hash": self.hash_time,
            "micro": self.micro_time,
        }
        if strategy not in table:
            raise ValueError(f"unknown load strategy {strategy!r}; options: {sorted(table)}")
        return table[strategy](num_edges, num_vertices, num_workers)

    @staticmethod
    def _check(num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")


@dataclass(frozen=True)
class LoadResult:
    """Outcome of a load: ownership plus the simulated cost."""

    partitioning: Partitioning
    simulated_seconds: float
    strategy: str
    num_workers: int
    shuffled_edges: int = 0


class StreamLoader:
    """Centralized loading: one machine streams the whole dataset.

    The partitioner (e.g. FENNEL) runs on the master as data streams in;
    per the paper's measurement we report only the loading time, not the
    partitioning compute time.
    """

    name = "stream"

    def __init__(self, partitioner, timing: LoadTimingModel | None = None):
        self.partitioner = partitioner
        self.timing = timing or LoadTimingModel()

    def load(
        self, graph: Graph, num_workers: int, seed=None,
        size_override: tuple[int, int] | None = None,
    ) -> LoadResult:
        """Load *graph* for *num_workers* machines.

        ``size_override = (num_edges, num_vertices)`` makes the timing
        model price a different (e.g. paper-scale) dataset size.
        """
        partitioning = self.partitioner.partition(graph, num_workers, seed=seed)
        e, n = size_override or (graph.num_edges, graph.num_vertices)
        return LoadResult(
            partitioning=partitioning,
            simulated_seconds=self.timing.stream_time(e, n, num_workers),
            strategy=self.name,
            num_workers=num_workers,
        )


class HashLoader:
    """Parallel text load with an all-to-all shuffle to hash owners."""

    name = "hash"

    def __init__(self, timing: LoadTimingModel | None = None):
        self.timing = timing or LoadTimingModel()

    def load(
        self, graph: Graph, num_workers: int, seed=None,
        size_override: tuple[int, int] | None = None,
    ) -> LoadResult:
        """Load *graph* for *num_workers* machines (see class docstring)."""
        partitioning = HashPartitioner().partition(graph, num_workers)
        e, n = size_override or (graph.num_edges, graph.num_vertices)
        return LoadResult(
            partitioning=partitioning,
            simulated_seconds=self.timing.hash_time(e, n, num_workers),
            strategy=self.name,
            num_workers=num_workers,
            shuffled_edges=int(e * (1.0 - 1.0 / num_workers)),
        )


class MicroLoader:
    """Hourglass's fast reload from micro-partition binary chunks.

    Requires the offline :class:`MicroPartitioning` artefact; the online
    clustering step adapts it to any worker count in milliseconds.
    """

    name = "micro"

    def __init__(self, artefact: MicroPartitioning, timing: LoadTimingModel | None = None):
        self.artefact = artefact
        self.timing = timing or LoadTimingModel()

    def load(
        self, graph: Graph, num_workers: int, seed=None,
        size_override: tuple[int, int] | None = None,
    ) -> LoadResult:
        """Load *graph* for *num_workers* machines (see class docstring).

        A memory-mapped CSR graph (``repro.graph.io.load_csr``) is never
        materialized here — clustering works on the micro-partition
        quotient graph — and is priced by its true on-disk footprint.
        """
        partitioning = self.artefact.cluster(num_workers, seed=seed)
        if size_override is None and is_memmap_backed(graph.indices):
            simulated = self.timing.micro_time_bytes(csr_nbytes(graph), num_workers)
        else:
            e, n = size_override or (graph.num_edges, graph.num_vertices)
            simulated = self.timing.micro_time(e, n, num_workers)
        return LoadResult(
            partitioning=partitioning,
            simulated_seconds=simulated,
            strategy=self.name,
            num_workers=num_workers,
        )
