"""Global aggregators (Pregel's reduce-and-broadcast primitive).

Vertices contribute values during superstep ``s``; the master reduces
worker-local partials at the barrier and the result is readable by every
vertex during superstep ``s + 1``.  Graph Coloring uses a counter of
uncoloured vertices; PageRank convergence checks use a sum of deltas.
"""

from __future__ import annotations

import abc


class Aggregator(abc.ABC):
    """An associative, commutative reduction with an identity element."""

    def __init__(self):
        self._value = self.identity()

    @abc.abstractmethod
    def identity(self):
        """The neutral element."""

    @abc.abstractmethod
    def reduce(self, a, b):
        """Merge two partial values."""

    def accumulate(self, value) -> None:
        """Fold *value* into the running reduction."""
        self._value = self.reduce(self._value, value)

    def merge(self, other: "Aggregator") -> None:
        """Fold another aggregator's partial result in (worker -> master)."""
        self._value = self.reduce(self._value, other._value)

    @property
    def value(self):
        """Current reduced value."""
        return self._value

    def reset(self) -> None:
        """Clear per-job state."""
        self._value = self.identity()


class SumAggregator(Aggregator):
    """Sum of contributions."""

    def identity(self):
        """The neutral element of this reduction."""
        return 0

    def reduce(self, a, b):
        """Merge two partial values."""
        return a + b


class MinAggregator(Aggregator):
    """Minimum contribution (identity: +inf)."""

    def identity(self):
        """The neutral element of this reduction."""
        return float("inf")

    def reduce(self, a, b):
        """Merge two partial values."""
        return a if a <= b else b


class MaxAggregator(Aggregator):
    """Maximum contribution (identity: -inf)."""

    def identity(self):
        """The neutral element of this reduction."""
        return float("-inf")

    def reduce(self, a, b):
        """Merge two partial values."""
        return a if a >= b else b


class AndAggregator(Aggregator):
    """Logical AND (identity: True)."""

    def identity(self):
        """The neutral element of this reduction."""
        return True

    def reduce(self, a, b):
        """Merge two partial values."""
        return bool(a) and bool(b)


class OrAggregator(Aggregator):
    """Logical OR (identity: False)."""

    def identity(self):
        """The neutral element of this reduction."""
        return False

    def reduce(self, a, b):
        """Merge two partial values."""
        return bool(a) or bool(b)
