"""Worker abstraction of the simulated distributed deployment.

A :class:`Worker` owns a set of vertices (one partition of the graph)
and their state: values, halted flags and the per-superstep outbox.  The
engine drives all workers in lock-step, mimicking Giraph's synchronous
execution model; workers exist as real objects (rather than an index
space) so that checkpointing, loading and the per-worker traffic stats
have an honest home.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Worker:
    """One simulated machine's share of the computation.

    Attributes:
        worker_id: dense id in ``[0, num_workers)``.
        vertices: global vertex ids owned by this worker (sorted).
        values: vertex values, keyed by global vertex id.
        halted: halted flags, keyed by global vertex id.
    """

    worker_id: int
    vertices: np.ndarray
    values: dict = field(default_factory=dict)
    halted: dict = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.vertices)

    def initialize(self, program, num_vertices_total: int) -> None:
        """Populate values and halted flags from the vertex program."""
        self.values = {
            int(v): program.initial_value(int(v), num_vertices_total)
            for v in self.vertices
        }
        self.halted = {
            int(v): not program.is_active_initially(int(v)) for v in self.vertices
        }

    def active_count(self, incoming_destinations=frozenset()) -> int:
        """Vertices that will run this superstep (non-halted or woken)."""
        return sum(
            1
            for v in self.vertices
            if not self.halted[int(v)] or int(v) in incoming_destinations
        )

    def state_snapshot(self) -> dict:
        """Checkpointable copy of this worker's mutable state."""
        return {
            "worker_id": self.worker_id,
            "values": dict(self.values),
            "halted": dict(self.halted),
        }

    def restore_state(self, snapshot: dict) -> None:
        """Load state captured by :meth:`state_snapshot`."""
        if snapshot["worker_id"] != self.worker_id:
            raise ValueError(
                f"snapshot is for worker {snapshot['worker_id']}, not {self.worker_id}"
            )
        self.values = dict(snapshot["values"])
        self.halted = dict(snapshot["halted"])


def build_workers(partitioning, num_workers: int) -> list[Worker]:
    """Create workers from a partitioning (partition p -> worker p)."""
    if partitioning.num_parts != num_workers:
        raise ValueError(
            f"partitioning has {partitioning.num_parts} parts but deployment "
            f"has {num_workers} workers"
        )
    return [
        Worker(worker_id=w, vertices=partitioning.part_vertices(w))
        for w in range(num_workers)
    ]
