"""Worker abstraction of the simulated distributed deployment.

A :class:`Worker` owns a set of vertices (one partition of the graph)
and a view of their state.  Vertex values and halted flags live in dense
numpy arrays indexed by *global* vertex id; when workers are built by the
engine they all share the engine's arrays (ownership is disjoint, so
sharing is safe), which is what lets the superstep loop compute active
sets and the halt condition with array operations instead of per-vertex
dict scans.  Workers still exist as real objects (rather than an index
space) so that checkpointing, loading and the per-worker traffic stats
have an honest home.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.state import get_tracer


def value_dtype_of(program) -> np.dtype:
    """The numpy dtype a program's vertex values are stored as."""
    dtype = getattr(program, "value_dtype", None)
    return np.dtype(object) if dtype is None else np.dtype(dtype)


@dataclass
class Worker:
    """One simulated machine's share of the computation.

    Attributes:
        worker_id: dense id in ``[0, num_workers)``.
        vertices: global vertex ids owned by this worker (sorted).
        values: dense value array indexed by global vertex id (this
            worker only touches its own slots).
        halted: dense boolean halted-flag array, same indexing.
    """

    worker_id: int
    vertices: np.ndarray
    values: np.ndarray | None = None
    halted: np.ndarray | None = None

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.vertices)

    def attach(self, values: np.ndarray, halted: np.ndarray) -> None:
        """Share the engine's global state arrays."""
        self.values = values
        self.halted = halted

    def initialize(
        self,
        program,
        num_vertices_total: int,
        values: np.ndarray | None = None,
        halted: np.ndarray | None = None,
    ) -> None:
        """Populate values and halted flags from the vertex program.

        When ``values``/``halted`` are omitted (standalone use, e.g. in
        tests) the worker allocates its own full-size arrays.
        """
        if values is None:
            values = np.empty(num_vertices_total, dtype=value_dtype_of(program))
        if halted is None:
            halted = np.zeros(num_vertices_total, dtype=bool)
        self.attach(values, halted)
        own = self.vertices
        init = program.initial_values(num_vertices_total)
        if init is not None:
            values[own] = np.asarray(init)[own]
        else:
            values[own] = np.fromiter(
                (program.initial_value(int(v), num_vertices_total) for v in own),
                dtype=values.dtype,
                count=len(own),
            )
        halted[own] = np.fromiter(
            (not program.is_active_initially(int(v)) for v in own),
            dtype=bool,
            count=len(own),
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "worker.init", worker=self.worker_id, vertices=self.num_vertices
            )

    def active_count(self, incoming_destinations=frozenset()) -> int:
        """Vertices that will run this superstep (non-halted or woken)."""
        own = self.vertices
        runnable = ~self.halted[own]
        if incoming_destinations:
            dests = np.fromiter(
                incoming_destinations,
                dtype=np.int64,
                count=len(incoming_destinations),
            )
            runnable |= np.isin(own, dests)
        return int(np.count_nonzero(runnable))

    def state_snapshot(self) -> dict:
        """Checkpointable copy of this worker's mutable state.

        Built by slicing the dense arrays (one gather per array) rather
        than materializing the values vertex-by-vertex.
        """
        own = self.vertices
        ids = own.tolist()
        return {
            "worker_id": self.worker_id,
            "values": dict(zip(ids, self.values[own].tolist())),
            "halted": dict(zip(ids, self.halted[own].tolist())),
        }

    def restore_state(self, snapshot: dict) -> None:
        """Load state captured by :meth:`state_snapshot`."""
        if snapshot["worker_id"] != self.worker_id:
            raise ValueError(
                f"snapshot is for worker {snapshot['worker_id']}, not {self.worker_id}"
            )
        for v, value in snapshot["values"].items():
            self.values[int(v)] = value
        for v, flag in snapshot["halted"].items():
            self.halted[int(v)] = bool(flag)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "worker.restore", worker=self.worker_id, vertices=self.num_vertices
            )


def build_workers(partitioning, num_workers: int) -> list[Worker]:
    """Create workers from a partitioning (partition p -> worker p)."""
    if partitioning.num_parts != num_workers:
        raise ValueError(
            f"partitioning has {partitioning.num_parts} parts but deployment "
            f"has {num_workers} workers"
        )
    return [
        Worker(worker_id=w, vertices=partitioning.part_vertices(w))
        for w in range(num_workers)
    ]
