"""Label-propagation community detection (the paper's §1 motivation).

The paper motivates recurring graph analyses with community detection on
billion-edge social graphs.  This vertex program implements synchronous
label propagation (Raghavan et al.): every vertex adopts the most
frequent label among its neighbours, with deterministic tie-breaking by
the smaller label; convergence is detected with a change-counting
aggregator.

Run on the symmetrised graph.
"""

from __future__ import annotations

from collections import Counter

from repro.engine.aggregators import SumAggregator
from repro.engine.vertex import ComputeContext, VertexProgram


class LabelPropagation(VertexProgram):
    """Community labels by synchronous propagation.

    Vertex value = current community label (initially the vertex id).

    Args:
        max_rounds: cap on propagation rounds (label propagation can
            oscillate under synchronous updates; the cap plus the
            change-counting halt keeps runs bounded).
    """

    message_bytes = 8

    def __init__(self, max_rounds: int = 30):
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.max_rounds = max_rounds

    def aggregators(self):
        """Aggregator factories used by this program."""
        return {"changes": SumAggregator}

    def initial_value(self, vertex_id: int, num_vertices: int) -> int:
        """Value of *vertex_id* before superstep 0."""
        return vertex_id

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        round_index = ctx.superstep
        if round_index == 0:
            ctx.send_to_neighbors(ctx.value)
            return
        if round_index > self.max_rounds or (
            round_index >= 2 and not ctx.aggregated("changes")
        ):
            ctx.vote_to_halt()
            return
        if messages:
            counts = Counter(messages)
            best_count = max(counts.values())
            new_label = min(
                label for label, count in counts.items() if count == best_count
            )
            if new_label != ctx.value:
                ctx.value = new_label
                ctx.aggregate("changes", 1)
        ctx.send_to_neighbors(ctx.value)


def community_assignments(values: dict) -> dict:
    """Group vertices by final label: label -> sorted member list."""
    groups: dict = {}
    for vertex, label in values.items():
        groups.setdefault(label, []).append(vertex)
    return {label: sorted(members) for label, members in groups.items()}


def modularity(graph, values: dict) -> float:
    """Newman modularity of a labelling on the symmetrised graph.

    Q = (1/2m) * sum_ij [A_ij - k_i k_j / 2m] * delta(c_i, c_j)
    computed over the undirected edge set.  Higher is better; random
    labels give ~0.
    """
    und = graph.undirected()
    m2 = und.num_edges  # 2m in undirected-edge terms (each edge twice)
    if m2 == 0:
        return 0.0
    degrees = und.out_degrees()
    intra = 0.0
    for src, dst in und.iter_edges():
        if values[src] == values[dst]:
            intra += 1.0
    expected = 0.0
    degree_by_label: dict = {}
    for v in range(und.num_vertices):
        label = values[v]
        degree_by_label[label] = degree_by_label.get(label, 0.0) + degrees[v]
    for total in degree_by_label.values():
        expected += total * total
    return intra / m2 - expected / (m2 * m2)
