"""Triangle counting — the graph-mining workload class (G-miner, §1).

Pregel-style counting on the symmetrised graph using the degree-ordered
wedge-check algorithm: each vertex sends its neighbour list only to
neighbours that rank higher in the (degree, id) total order, and
receivers count intersections with their own higher-ranked adjacency.
Every triangle is counted exactly once, at its lowest-ranked vertex's
highest-ranked corner.

Vertex value = triangles this vertex closed; the global count is their
sum (exposed through the ``triangles`` aggregator as well).
"""

from __future__ import annotations

from repro.engine.aggregators import SumAggregator
from repro.engine.vertex import ComputeContext, VertexProgram


class TriangleCount(VertexProgram):
    """Count triangles on a symmetric graph."""

    message_bytes = 64  # adjacency fragments are heavier than scalars

    def aggregators(self):
        """Aggregator factories used by this program."""
        return {"triangles": SumAggregator}

    def initial_value(self, vertex_id: int, num_vertices: int) -> int:
        """Value of *vertex_id* before superstep 0."""
        return 0

    @staticmethod
    def _rank(degree: int, vertex_id: int) -> tuple[int, int]:
        return (degree, vertex_id)

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        my_rank = self._rank(ctx.out_degree, ctx.vertex_id)
        if ctx.superstep == 0:
            # Phase A: learn neighbour degrees (needed for ranking).
            ctx.send_to_neighbors((ctx.vertex_id, ctx.out_degree))
        elif ctx.superstep == 1:
            # Phase B: forward my higher-ranked adjacency to each
            # higher-ranked neighbour.
            ranks = {vid: self._rank(deg, vid) for vid, deg in messages}
            higher = sorted(
                vid for vid, rank in ranks.items() if rank > my_rank
            )
            for target in higher:
                others = tuple(v for v in higher if v != target)
                if others:
                    ctx.send(target, others)
        else:
            # Phase C: intersect received candidate sets with my own
            # neighbourhood.
            neighbours = set(int(v) for v in ctx.out_edges)
            closed = 0
            for candidates in messages:
                for vid in candidates:
                    if vid in neighbours:
                        closed += 1
            # Each triangle {a<b<c by rank} is reported by a to b with
            # candidate c and to c with candidate b: counted twice here.
            ctx.value = closed
            ctx.aggregate("triangles", closed)
            ctx.vote_to_halt()


def total_triangles(result) -> int:
    """Global triangle count from an ExecutionResult of TriangleCount."""
    doubled = sum(result.values.values())
    if doubled % 2:
        raise ValueError("inconsistent triangle count (odd corner sum)")
    return doubled // 2
