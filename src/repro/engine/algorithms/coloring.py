"""Greedy Graph Coloring vertex program (the paper's long job).

Follows the Pregel-style approach of Salihoglu & Widom (VLDB'14):
repeatedly extract a maximal independent set (Luby's randomized MIS)
from the still-uncoloured vertices and give the whole set the next
colour.  Each colour round takes two supersteps:

* **phase A** (even supersteps): every uncoloured vertex broadcasts a
  per-round pseudo-random priority;
* **phase B** (odd supersteps): a vertex whose priority beats every
  uncoloured neighbour joins the round's independent set and takes the
  round index as its colour.

Adjacent vertices can never join the same round, so the result is a
proper colouring.  The expected number of rounds is logarithmic, but the
many rounds over a big graph are what make GC the paper's 4-hour job.

The input graph should be symmetric (call ``graph.undirected()`` first)
since colouring constraints are undirected.
"""

from __future__ import annotations

import numpy as np

from repro.engine.aggregators import SumAggregator
from repro.engine.messages import MaxCombiner
from repro.engine.vertex import ComputeContext, VertexProgram

UNCOLOURED = -1


def _priority(vertex_id: int, round_index: int, salt: int) -> int:
    """Deterministic pseudo-random priority for (vertex, round).

    SplitMix64-style mixing: uniform enough for Luby's argument, stable
    across runs (and across checkpoint recovery, which matters here).
    """
    x = (vertex_id * 0x9E3779B97F4A7C15 + round_index * 0xBF58476D1CE4E5B9 + salt) & (
        2**64 - 1
    )
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & (2**64 - 1)
    return x ^ (x >> 31)


class GraphColoring(VertexProgram):
    """Luby-MIS based greedy colouring.

    Vertex value is the assigned colour (``-1`` while uncoloured).

    Args:
        seed: salt for the per-round priorities.
    """

    combiner = MaxCombiner
    message_bytes = 16  # (priority, vertex id)
    # Colours are small ints; messages are (priority, id) tuples, so the
    # program runs the scalar path over a typed value array.
    value_dtype = np.int64

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def aggregators(self):
        """Aggregator factories used by this program."""
        return {"uncoloured": SumAggregator}

    def initial_value(self, vertex_id: int, num_vertices: int) -> int:
        """Value of *vertex_id* before superstep 0."""
        return UNCOLOURED

    def initial_values(self, num_vertices: int) -> np.ndarray:
        """Whole initial value array at once."""
        return np.full(num_vertices, UNCOLOURED, dtype=np.int64)

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        if ctx.value != UNCOLOURED:
            ctx.vote_to_halt()
            return
        round_index = ctx.superstep // 2
        my_key = (_priority(ctx.vertex_id, round_index, self.seed), ctx.vertex_id)
        if ctx.superstep % 2 == 0:
            # Phase A: advertise this round's priority to all neighbours.
            ctx.aggregate("uncoloured", 1)
            ctx.send_to_neighbors(my_key)
        else:
            # Phase B: local maxima join the independent set.
            best_neighbour = max(messages) if messages else None
            if best_neighbour is None or my_key > best_neighbour:
                ctx.value = round_index
                ctx.vote_to_halt()
            # Otherwise stay active for the next round.


def count_colors(values: dict) -> int:
    """Number of distinct colours in a finished colouring."""
    return len({c for c in values.values() if c != UNCOLOURED})


def is_proper_coloring(graph, values: dict) -> bool:
    """Check no edge connects two vertices of the same colour.

    ``graph`` may be the directed input; the check covers each directed
    edge, which suffices for symmetric graphs.
    """
    for src, dst in graph.iter_edges():
        if src != dst and values[src] == values[dst]:
            return False
    return True
