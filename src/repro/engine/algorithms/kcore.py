"""k-core decomposition by iterative peeling (extension workload).

A vertex survives in the k-core if it has at least ``k`` surviving
neighbours.  Rounds of two supersteps each: alive vertices broadcast
liveness, then any vertex seeing fewer than ``k`` alive neighbours dies.
A round with no deaths is a fixed point; the global death counter (an
aggregator) lets every vertex detect it and halt.

Run on the symmetrised graph.
"""

from __future__ import annotations

import numpy as np

from repro.engine.aggregators import SumAggregator
from repro.engine.messages import SumCombiner
from repro.engine.vertex import ComputeContext, VertexProgram


class KCore(VertexProgram):
    """Vertex value: True iff the vertex is in the k-core.

    Args:
        k: the core order (>= 1).
    """

    combiner = SumCombiner
    message_bytes = 8
    value_dtype = np.bool_

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k

    def aggregators(self):
        """Aggregator factories used by this program."""
        return {"deaths": SumAggregator}

    def initial_value(self, vertex_id: int, num_vertices: int) -> bool:
        """Value of *vertex_id* before superstep 0."""
        return True

    def initial_values(self, num_vertices: int) -> np.ndarray:
        """Whole initial value array at once."""
        return np.ones(num_vertices, dtype=np.bool_)

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        if not ctx.value:
            ctx.vote_to_halt()
            return
        if ctx.superstep % 2 == 0:
            # Quiescence check: the previous round recorded no deaths.
            if ctx.superstep >= 2 and not ctx.aggregated("deaths"):
                ctx.vote_to_halt()
                return
            ctx.send_to_neighbors(1)
        else:
            alive_neighbours = sum(messages)
            if alive_neighbours < self.k:
                ctx.value = False
                ctx.aggregate("deaths", 1)
                ctx.vote_to_halt()


def core_members(values: dict) -> set:
    """Vertex ids that survived the peeling."""
    return {v for v, alive in values.items() if alive}
