"""Weakly Connected Components via HashMin label propagation."""

from __future__ import annotations

from repro.engine.messages import MinCombiner
from repro.engine.vertex import ComputeContext, VertexProgram


class ConnectedComponents(VertexProgram):
    """Each vertex converges to the minimum vertex id in its component.

    Run on the symmetrised graph (``graph.undirected()``) for *weakly*
    connected components of a directed input.
    """

    combiner = MinCombiner
    message_bytes = 8

    def initial_value(self, vertex_id: int, num_vertices: int) -> int:
        """Value of *vertex_id* before superstep 0."""
        return vertex_id

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        candidate = min(messages) if messages else ctx.value
        if ctx.superstep == 0:
            candidate = min(candidate, ctx.vertex_id)
            ctx.value = candidate
            ctx.send_to_neighbors(candidate)
        elif candidate < ctx.value:
            ctx.value = candidate
            ctx.send_to_neighbors(candidate)
        ctx.vote_to_halt()


def component_sizes(values: dict) -> dict:
    """Map component label -> member count."""
    sizes: dict = {}
    for label in values.values():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes
