"""Weakly Connected Components via HashMin label propagation."""

from __future__ import annotations

import numpy as np

from repro.engine.messages import MinCombiner
from repro.engine.vertex import ComputeContext, DenseComputeContext, VertexProgram


class ConnectedComponents(VertexProgram):
    """Each vertex converges to the minimum vertex id in its component.

    Run on the symmetrised graph (``graph.undirected()``) for *weakly*
    connected components of a directed input.
    """

    combiner = MinCombiner
    message_bytes = 8
    value_dtype = np.int64
    supports_dense = True

    def initial_value(self, vertex_id: int, num_vertices: int) -> int:
        """Value of *vertex_id* before superstep 0."""
        return vertex_id

    def initial_values(self, num_vertices: int) -> np.ndarray:
        """Whole initial value array at once."""
        return np.arange(num_vertices, dtype=np.int64)

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        candidate = min(messages) if messages else ctx.value
        if ctx.superstep == 0:
            candidate = min(candidate, ctx.vertex_id)
            ctx.value = candidate
            ctx.send_to_neighbors(candidate)
        elif candidate < ctx.value:
            ctx.value = candidate
            ctx.send_to_neighbors(candidate)
        ctx.vote_to_halt()

    def compute_dense(self, ctx: DenseComputeContext) -> None:
        """One batched superstep over all active vertices."""
        values = ctx.values
        if ctx.superstep == 0:
            # Every vertex's label starts as its own id; broadcast it.
            ctx.send_to_all_neighbors(ctx.active, values)
        else:
            candidate = np.where(ctx.has_message, ctx.messages, np.inf)
            improved = ctx.active & (candidate < values)
            values[improved] = candidate[improved]
            ctx.send_to_all_neighbors(improved, values)
        ctx.vote_to_halt(ctx.active)


def component_sizes(values: dict) -> dict:
    """Map component label -> member count."""
    sizes: dict = {}
    for label in values.values():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes
