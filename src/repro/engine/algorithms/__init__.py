"""Vertex programs: the paper's three jobs plus extension workloads."""

from repro.engine.algorithms.coloring import (
    UNCOLOURED,
    GraphColoring,
    count_colors,
    is_proper_coloring,
)
from repro.engine.algorithms.community import (
    LabelPropagation,
    community_assignments,
    modularity,
)
from repro.engine.algorithms.degree import InDegree, OutDegree
from repro.engine.algorithms.kcore import KCore, core_members
from repro.engine.algorithms.pagerank import PageRank
from repro.engine.algorithms.sssp import SSSP
from repro.engine.algorithms.triangles import TriangleCount, total_triangles
from repro.engine.algorithms.wcc import ConnectedComponents, component_sizes

__all__ = [
    "ConnectedComponents",
    "GraphColoring",
    "InDegree",
    "KCore",
    "LabelPropagation",
    "OutDegree",
    "PageRank",
    "SSSP",
    "TriangleCount",
    "UNCOLOURED",
    "community_assignments",
    "component_sizes",
    "core_members",
    "count_colors",
    "is_proper_coloring",
    "modularity",
    "total_triangles",
]
