"""Single-Source Shortest Paths vertex program (the paper's short job)."""

from __future__ import annotations

import math

import numpy as np

from repro.engine.messages import MinCombiner
from repro.engine.vertex import ComputeContext, DenseComputeContext, VertexProgram


class SSSP(VertexProgram):
    """Bellman-Ford style SSSP in the Pregel model.

    Every vertex holds its tentative distance from ``source`` (infinity
    until reached).  On improvement it relaxes its out-edges; quiescence
    (no improving messages) ends the run.  With unit weights this
    degenerates to BFS, finishing in ``diameter`` supersteps — the
    paper's 3-minute job.

    Args:
        source: the source vertex id.
    """

    combiner = MinCombiner
    message_bytes = 8
    value_dtype = np.float64
    supports_dense = True

    def __init__(self, source: int = 0):
        if source < 0:
            raise ValueError(f"source must be >= 0, got {source}")
        self.source = source

    def initial_value(self, vertex_id: int, num_vertices: int) -> float:
        """Value of *vertex_id* before superstep 0."""
        return 0.0 if vertex_id == self.source else math.inf

    def initial_values(self, num_vertices: int) -> np.ndarray:
        """Whole initial value array at once."""
        values = np.full(num_vertices, np.inf, dtype=np.float64)
        if self.source < num_vertices:
            values[self.source] = 0.0
        return values

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        best = min(messages) if messages else math.inf
        if ctx.superstep == 0 and ctx.vertex_id == self.source:
            best = 0.0
        if best < ctx.value or (ctx.superstep == 0 and ctx.vertex_id == self.source):
            if best < ctx.value:
                ctx.value = best
            # Relax out-edges with the (possibly updated) distance.
            dist = ctx.value
            for dst, weight in zip(ctx.out_edges, ctx.out_weights):
                ctx.send(int(dst), dist + float(weight))
        ctx.vote_to_halt()

    def compute_dense(self, ctx: DenseComputeContext) -> None:
        """One batched superstep over all active vertices."""
        values = ctx.values
        best = np.where(ctx.has_message, ctx.messages, np.inf)
        improved = ctx.active & (best < values)
        values[improved] = best[improved]
        senders = improved
        if (
            ctx.superstep == 0
            and self.source < ctx.num_vertices
            and ctx.active[self.source]
        ):
            # The source relaxes its edges even though 0.0 < 0.0 is false.
            # Gated on the active mask so that, under partition-restricted
            # parallel execution, only the worker owning the source sends.
            senders = improved.copy()
            senders[self.source] = True
        edge_keep = senders[ctx.edge_sources]
        if edge_keep.any():
            src = ctx.edge_sources[edge_keep]
            dst = ctx.graph.indices[edge_keep]
            if ctx.graph.weights is not None:
                weights = ctx.graph.weights[edge_keep]
            else:
                weights = 1.0
            ctx.send_batch(src, dst, values[src] + weights)
        ctx.vote_to_halt(ctx.active)
