"""Degree counting — the simplest vertex program, used in tests/examples."""

from __future__ import annotations

from repro.engine.messages import SumCombiner
from repro.engine.vertex import ComputeContext, VertexProgram


class OutDegree(VertexProgram):
    """Vertex value = its out-degree; one superstep, no messages."""

    def initial_value(self, vertex_id: int, num_vertices: int) -> int:
        """Value of *vertex_id* before superstep 0."""
        return 0

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        ctx.value = ctx.out_degree
        ctx.vote_to_halt()


class InDegree(VertexProgram):
    """Vertex value = its in-degree; two supersteps via counting messages."""

    combiner = SumCombiner
    message_bytes = 8

    def initial_value(self, vertex_id: int, num_vertices: int) -> int:
        """Value of *vertex_id* before superstep 0."""
        return 0

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        if ctx.superstep == 0:
            ctx.send_to_neighbors(1)
        else:
            ctx.value = sum(messages)
        ctx.vote_to_halt()
