"""Degree counting — the simplest vertex program, used in tests/examples."""

from __future__ import annotations

import numpy as np

from repro.engine.messages import SumCombiner
from repro.engine.vertex import ComputeContext, DenseComputeContext, VertexProgram


class OutDegree(VertexProgram):
    """Vertex value = its out-degree; one superstep, no messages."""

    value_dtype = np.int64
    supports_dense = True

    def initial_value(self, vertex_id: int, num_vertices: int) -> int:
        """Value of *vertex_id* before superstep 0."""
        return 0

    def initial_values(self, num_vertices: int) -> np.ndarray:
        """Whole initial value array at once."""
        return np.zeros(num_vertices, dtype=np.int64)

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        ctx.value = ctx.out_degree
        ctx.vote_to_halt()

    def compute_dense(self, ctx: DenseComputeContext) -> None:
        """One batched superstep over all active vertices."""
        ctx.values[ctx.active] = ctx.out_degrees()[ctx.active]
        ctx.vote_to_halt(ctx.active)


class InDegree(VertexProgram):
    """Vertex value = its in-degree; two supersteps via counting messages."""

    combiner = SumCombiner
    message_bytes = 8
    value_dtype = np.int64
    supports_dense = True

    def initial_value(self, vertex_id: int, num_vertices: int) -> int:
        """Value of *vertex_id* before superstep 0."""
        return 0

    def initial_values(self, num_vertices: int) -> np.ndarray:
        """Whole initial value array at once."""
        return np.zeros(num_vertices, dtype=np.int64)

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        if ctx.superstep == 0:
            ctx.send_to_neighbors(1)
        else:
            ctx.value = sum(messages)
        ctx.vote_to_halt()

    def compute_dense(self, ctx: DenseComputeContext) -> None:
        """One batched superstep over all active vertices."""
        if ctx.superstep == 0:
            ones = np.ones(ctx.num_vertices, dtype=np.int64)
            ctx.send_to_all_neighbors(ctx.active, ones)
        else:
            woken = ctx.active & ctx.has_message
            ctx.values[woken] = ctx.messages[woken]
        ctx.vote_to_halt(ctx.active)
