"""PageRank vertex program (Brin & Page), one of the paper's three jobs."""

from __future__ import annotations

import numpy as np

from repro.engine.aggregators import SumAggregator
from repro.engine.messages import SumCombiner
from repro.engine.vertex import ComputeContext, DenseComputeContext, VertexProgram


class PageRank(VertexProgram):
    """Iterative PageRank with damping, fixed iteration count.

    The paper runs 30 iterations on the Twitter graph (its "medium" job,
    20 minutes on the last-resort configuration).  Dangling vertices
    (out-degree 0) leak rank, as in the classic Pregel formulation.

    Args:
        iterations: number of rank-update supersteps.
        damping: damping factor (default 0.85).
    """

    combiner = SumCombiner
    message_bytes = 8
    value_dtype = np.float64
    supports_dense = True

    def __init__(self, iterations: int = 30, damping: float = 0.85):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        self.iterations = iterations
        self.damping = damping

    def aggregators(self):
        """Aggregator factories used by this program."""
        return {"rank_sum": SumAggregator}

    def initial_value(self, vertex_id: int, num_vertices: int) -> float:
        """Value of *vertex_id* before superstep 0."""
        return 1.0 / num_vertices

    def initial_values(self, num_vertices: int) -> np.ndarray:
        """Whole initial value array at once."""
        return np.full(num_vertices, 1.0 / num_vertices, dtype=np.float64)

    def compute(self, ctx: ComputeContext, messages: list) -> None:
        """One superstep for the bound vertex (see class docstring)."""
        if ctx.superstep > 0:
            incoming = sum(messages)
            ctx.value = (1.0 - self.damping) / ctx.num_vertices + self.damping * incoming
        ctx.aggregate("rank_sum", ctx.value)
        if ctx.superstep < self.iterations:
            if ctx.out_degree:
                ctx.send_to_neighbors(ctx.value / ctx.out_degree)
        else:
            ctx.vote_to_halt()

    def compute_dense(self, ctx: DenseComputeContext) -> None:
        """One batched superstep over all active vertices."""
        values = ctx.values
        active = ctx.active
        if ctx.superstep > 0:
            incoming = np.where(ctx.has_message, ctx.messages, 0.0)
            values[active] = (
                (1.0 - self.damping) / ctx.num_vertices
                + self.damping * incoming[active]
            )
        ctx.aggregate("rank_sum", float(values[active].sum()))
        if ctx.superstep < self.iterations:
            degrees = ctx.out_degrees()
            senders = active & (degrees > 0)
            ctx.send_to_all_neighbors(senders, values / np.maximum(degrees, 1))
        else:
            ctx.vote_to_halt(active)
