"""Mechanistic superstep timing: from engine statistics to wall time.

The provisioning performance model (:mod:`repro.core.perfmodel`)
postulates that cluster throughput degrades with the worker count as
``w**-sync_penalty``.  This module derives that behaviour *bottom-up*
from the engine's own per-superstep statistics: a superstep's simulated
wall time is

    max-worker compute  +  remote traffic / network  +  barrier cost

so more workers shrink per-worker compute but inflate the cut (remote
messages) and the barrier, producing the sub-linear scaling the paper
measures.  :func:`fit_sync_penalty` closes the loop by fitting the
exponent from actual engine runs at several worker counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.engine.engine import ExecutionResult, PregelEngine, SuperstepStats
from repro.graph.graph import Graph
from repro.partitioning.hashing import HashPartitioner
from repro.utils.units import MiB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ClusterTimingModel:
    """Hardware constants for the superstep time estimate.

    Attributes:
        vertex_ops_per_second: per-worker vertex-program invocations/s.
        message_ops_per_second: per-worker message handling rate.
        network_bandwidth: per-worker network throughput (bytes/s).
        barrier_latency: per-superstep synchronisation cost (seconds),
            growing logarithmically with the worker count.
    """

    vertex_ops_per_second: float = 2e6
    message_ops_per_second: float = 5e6
    network_bandwidth: float = 120 * MiB
    barrier_latency: float = 0.05

    def __post_init__(self):
        check_positive("vertex_ops_per_second", self.vertex_ops_per_second)
        check_positive("message_ops_per_second", self.message_ops_per_second)
        check_positive("network_bandwidth", self.network_bandwidth)
        check_positive("barrier_latency", self.barrier_latency)

    def superstep_seconds(self, stats: SuperstepStats, num_workers: int) -> float:
        """Estimated wall time of one superstep on *num_workers* machines.

        Assumes even spread of active vertices and messages (the
        partitioners balance load); skew can be added by scaling the
        compute term with the max/avg partition load.
        """
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        compute = stats.active_vertices / (num_workers * self.vertex_ops_per_second)
        messaging = stats.messages_sent / (num_workers * self.message_ops_per_second)
        network = stats.remote_bytes / (num_workers * self.network_bandwidth)
        barrier = self.barrier_latency * (1.0 + math.log2(num_workers))
        return compute + messaging + network + barrier

    def job_seconds(self, result: ExecutionResult, num_workers: int) -> float:
        """Estimated wall time of a whole run."""
        return sum(self.superstep_seconds(s, num_workers) for s in result.stats)


def estimate_execution_time(
    graph: Graph,
    program,
    num_workers: int,
    partitioner=None,
    timing: ClusterTimingModel | None = None,
    seed=None,
) -> float:
    """Run *program* on *graph* and price its wall time for a deployment.

    This is the mechanistic counterpart of
    :meth:`repro.core.perfmodel.PerformanceModel.exec_time`: instead of
    scaling a measured constant, it executes the actual engine and sums
    modeled superstep times.
    """
    timing = timing or ClusterTimingModel()
    partitioner = partitioner or HashPartitioner()
    partitioning = partitioner.partition(graph, num_workers, seed=seed)
    result = PregelEngine(graph, program, partitioning).run()
    return timing.job_seconds(result, num_workers)


def fit_sync_penalty(
    graph: Graph,
    program_factory,
    worker_counts=(2, 4, 8, 16),
    base_timing: ClusterTimingModel | None = None,
    reference_workers: int = 4,
    seed=None,
) -> tuple[float, dict]:
    """Fit ``time ∝ w**penalty`` for equal-total-capacity deployments.

    Emulates the paper's catalogue: total compute and total network are
    held constant while the worker count varies (bigger machines ↔
    fewer workers), by scaling the per-worker rates as
    ``reference_workers / w``.  The wall time then grows with ``w``
    through the growing edge cut (remote traffic) and the deeper
    barrier — the coordination penalty the provisioning performance
    model abstracts as ``w**sync_penalty``.

    Returns ``(penalty, times_by_workers)``; the penalty should be
    positive for any communication-bound vertex program.
    """
    base_timing = base_timing or ClusterTimingModel()
    times = {}
    for w in worker_counts:
        scale = reference_workers / w
        timing = ClusterTimingModel(
            vertex_ops_per_second=base_timing.vertex_ops_per_second * scale,
            message_ops_per_second=base_timing.message_ops_per_second * scale,
            network_bandwidth=base_timing.network_bandwidth * scale,
            barrier_latency=base_timing.barrier_latency,
        )
        times[w] = estimate_execution_time(
            graph, program_factory(), w, timing=timing, seed=seed
        )
    ws = np.log(np.array(sorted(times)))
    ts = np.log(np.array([times[w] for w in sorted(times)]))
    slope, _ = np.polyfit(ws, ts, 1)
    return float(slope), times
