"""Checkpointing engine state to the external datastore.

Mirrors the paper's modified Giraph, which writes checkpoints to S3 (not
the cluster filesystem) so a *full* deployment loss — the normal case
when a whole spot configuration is evicted — can still be recovered
(§7).  Checkpoints carry the superstep counter, all vertex values and
halted flags, pending messages and aggregator state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.datastore import DataStore
from repro.engine.engine import PregelEngine
from repro.obs.state import get_metrics, get_tracer

#: Current checkpoint payload format: the engine's dense state arrays
#: (values, halted, pending-message arrays, stats) pickled directly.
CHECKPOINT_FORMAT = 2


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata about one stored checkpoint."""

    key: str
    superstep: int
    nbytes: int
    simulated_write_seconds: float


class CheckpointManager:
    """Writes/reads engine checkpoints to/from a :class:`DataStore`.

    Args:
        datastore: the external store.
        job_id: namespace for this job's checkpoints.
        keep_last: older checkpoints beyond this count are deleted.
    """

    def __init__(self, datastore: DataStore, job_id: str, keep_last: int = 2):
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.datastore = datastore
        self.job_id = job_id
        self.keep_last = keep_last
        self._history: list[CheckpointInfo] = []

    def _key(self, superstep: int) -> str:
        return f"checkpoints/{self.job_id}/superstep-{superstep:08d}"

    def save(self, engine: PregelEngine, num_writers: int = 1) -> CheckpointInfo:
        """Persist the engine's state; returns checkpoint metadata.

        ``num_writers`` models the workers writing partitions of the
        state in parallel (affects the simulated write time only).
        """
        state = engine.capture_state()
        key = self._key(engine.superstep)
        self.datastore.put_object(key, state)
        nbytes = self.datastore.size_of(key)
        write_time = self.datastore.transfer_time(nbytes, num_writers)
        info = CheckpointInfo(
            key=key,
            superstep=engine.superstep,
            nbytes=nbytes,
            simulated_write_seconds=write_time,
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "checkpoint.save",
                superstep=engine.superstep,
                nbytes=nbytes,
                sim_seconds=write_time,
            )
            metrics = get_metrics()
            metrics.counter(
                "checkpoint_writes_total", "Engine checkpoints persisted"
            ).inc(1, job_id=self.job_id)
            metrics.histogram(
                "checkpoint_bytes", "Serialized size of one engine checkpoint"
            ).observe(nbytes, job_id=self.job_id)
        self._history.append(info)
        self._prune()
        return info

    def latest(self) -> CheckpointInfo | None:
        """Most recent checkpoint, or None when none exist."""
        return self._history[-1] if self._history else None

    def load_into(self, engine: PregelEngine, info: CheckpointInfo | None = None) -> float:
        """Restore *engine* from a checkpoint; returns simulated read time.

        The engine may have a different worker layout than the one that
        wrote the checkpoint (reconfiguration after eviction) — state is
        re-scattered to the new owners.
        """
        if info is None:
            info = self.latest()
        if info is None:
            raise LookupError(f"no checkpoints stored for job {self.job_id!r}")
        state, read_time = self.datastore.get_object_timed(info.key)
        engine.restore_state(state)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "checkpoint.restore",
                superstep=info.superstep,
                nbytes=info.nbytes,
                sim_seconds=read_time,
            )
            get_metrics().counter(
                "checkpoint_restores_total", "Engine checkpoint restores"
            ).inc(1, job_id=self.job_id)
        return read_time

    def history(self) -> list[CheckpointInfo]:
        """All stored checkpoint metadata, oldest first."""
        return list(self._history)

    def _prune(self) -> None:
        while len(self._history) > self.keep_last:
            stale = self._history.pop(0)
            self.datastore.delete(stale.key)
