"""Checkpointing engine state to the external datastore.

Mirrors the paper's modified Giraph, which writes checkpoints to S3 (not
the cluster filesystem) so a *full* deployment loss — the normal case
when a whole spot configuration is evicted — can still be recovered
(§7).  Checkpoints carry the superstep counter, all vertex values and
halted flags, pending messages and aggregator state.

Three payload formats are readable:

* **format 1** (legacy) — per-worker ``{vertex: value}`` dicts;
* **format 2** — the engine's dense state arrays pickled directly;
* **format 3** (current) — a compressed envelope.  A ``full`` envelope
  carries the whole format-2 state, pickled and compressed (zlib by
  default; zstd when the optional ``zstandard`` module is installed).
  A ``delta`` envelope carries only the vertices whose value changed
  since the last *full* snapshot (a packed changed-vertex mask plus the
  changed values), the packed halted flags, and the pending messages —
  restore composes ``full + delta``.  Long-running jobs with shrinking
  frontiers (SSSP, WCC) checkpoint sublinearly in supersteps: the
  datastore byte counters track the frontier, not the graph.

Every format-3 envelope carries a CRC of its compressed payload; a
corrupted or unreadable checkpoint makes :meth:`CheckpointManager.load_into`
fall back to the most recent restorable snapshot (ultimately the last
full one) instead of failing the recovery.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass

import numpy as np

from repro.engine.datastore import DataStore
from repro.engine.engine import PregelEngine
from repro.obs.state import get_metrics, get_tracer

try:  # optional: not part of the baked-in toolchain
    import zstandard as _zstandard
except ImportError:  # pragma: no cover - exercised where zstd is absent
    _zstandard = None

#: Current checkpoint payload format: a compressed (and optionally
#: delta-encoded) envelope around the engine's dense state arrays.
CHECKPOINT_FORMAT = 3


class CheckpointCorruptionError(RuntimeError):
    """A stored checkpoint failed its integrity check or cannot be read."""


def _resolve_codec(codec: str | None) -> str | None:
    if codec not in (None, "zlib", "zstd"):
        raise ValueError(f"codec must be None, 'zlib' or 'zstd', got {codec!r}")
    if codec == "zstd" and _zstandard is None:
        return "zlib"  # graceful degradation when zstandard is not installed
    return codec


def _compress(codec: str, blob: bytes) -> bytes:
    if codec == "zstd":
        return _zstandard.ZstdCompressor().compress(blob)
    return zlib.compress(blob, 1)


def _decompress(codec: str, blob: bytes) -> bytes:
    if codec == "zstd":
        if _zstandard is None:
            raise CheckpointCorruptionError(
                "checkpoint was written with zstd but zstandard is not installed"
            )
        return _zstandard.ZstdDecompressor().decompress(blob)
    return zlib.decompress(blob)


@dataclass(frozen=True)
class CheckpointInfo:
    """Metadata about one stored checkpoint."""

    key: str
    superstep: int
    nbytes: int
    simulated_write_seconds: float
    kind: str = "full"  # "full" | "delta"
    base_key: str | None = None  # the full snapshot a delta composes with


class CheckpointManager:
    """Writes/reads engine checkpoints to/from a :class:`DataStore`.

    Args:
        datastore: the external store.
        job_id: namespace for this job's checkpoints.
        keep_last: older checkpoints beyond this count are deleted
            (full snapshots that retained deltas compose with are kept
            regardless).
        delta: write delta checkpoints between full snapshots (changed
            vertices only, against the last full snapshot).
        full_interval: with ``delta``, force a full snapshot after this
            many consecutive deltas.
        codec: ``"zlib"`` (default), ``"zstd"`` (falls back to zlib when
            unavailable) or ``None`` for uncompressed legacy format-2
            payloads (which also disables delta encoding).
    """

    def __init__(
        self,
        datastore: DataStore,
        job_id: str,
        keep_last: int = 2,
        *,
        delta: bool = False,
        full_interval: int = 4,
        codec: str | None = "zlib",
    ):
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        if full_interval < 1:
            raise ValueError("full_interval must be >= 1")
        self.datastore = datastore
        self.job_id = job_id
        self.keep_last = keep_last
        self.codec = _resolve_codec(codec)
        self.delta = bool(delta) and self.codec is not None
        self.full_interval = full_interval
        self._history: list[CheckpointInfo] = []
        self._full_state: dict | None = None  # values/halted of last full save
        self._full_info: CheckpointInfo | None = None
        self._full_nbytes = 0
        self._deltas_since_full = 0

    def _key(self, superstep: int) -> str:
        return f"checkpoints/{self.job_id}/superstep-{superstep:08d}"

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def save(self, engine: PregelEngine, num_writers: int = 1) -> CheckpointInfo:
        """Persist the engine's state; returns checkpoint metadata.

        ``num_writers`` models the workers writing partitions of the
        state in parallel (affects the simulated write time only).
        """
        state = engine.capture_state()
        key = self._key(engine.superstep)
        kind, base_key = "full", None
        if self.codec is None:
            self.datastore.put_object(key, state)  # legacy format-2 write
        else:
            payload = state
            if self._delta_possible(state):
                kind = "delta"
                base_key = self._full_info.key
                payload = self._delta_payload(state)
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            compressed = _compress(self.codec, blob)
            envelope = {
                "format": 3,
                "kind": kind,
                "codec": self.codec,
                "base_key": base_key,
                "superstep": state["superstep"],
                "crc32": zlib.crc32(compressed),
                "payload": compressed,
            }
            self.datastore.put_object(key, envelope)
        nbytes = self.datastore.size_of(key)
        write_time = self.datastore.transfer_time(nbytes, num_writers)
        info = CheckpointInfo(
            key=key,
            superstep=engine.superstep,
            nbytes=nbytes,
            simulated_write_seconds=write_time,
            kind=kind,
            base_key=base_key,
        )
        if kind == "full":
            self._full_state = {"values": state["values"], "halted": state["halted"]}
            self._full_info = info
            self._full_nbytes = nbytes
            self._deltas_since_full = 0
        else:
            self._deltas_since_full += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "checkpoint.save",
                superstep=engine.superstep,
                nbytes=nbytes,
                sim_seconds=write_time,
                kind=kind,
            )
            metrics = get_metrics()
            metrics.counter(
                "checkpoint_writes_total", "Engine checkpoints persisted"
            ).inc(1, job_id=self.job_id, kind=kind)
            metrics.histogram(
                "checkpoint_bytes", "Serialized size of one engine checkpoint"
            ).observe(nbytes, job_id=self.job_id)
            if kind == "delta":
                metrics.histogram(
                    "checkpoint_delta_ratio",
                    "Delta checkpoint bytes relative to the last full snapshot",
                ).observe(nbytes / max(1, self._full_nbytes), job_id=self.job_id)
        self._history.append(info)
        self._prune()
        return info

    def _delta_possible(self, state: dict) -> bool:
        return (
            self.delta
            and self._full_state is not None
            and self._full_info is not None
            and self._deltas_since_full < self.full_interval
            and len(self._full_state["values"]) == len(state["values"])
        )

    def _delta_payload(self, state: dict) -> dict:
        """Changed vertices against the last full snapshot, packed."""
        base = self._full_state
        values = state["values"]
        # NaN compares unequal to itself -> conservatively "changed".
        changed = values != base["values"]
        base_superstep = self._full_info.superstep
        return {
            "kind": "delta",
            "num_vertices": int(state["num_vertices"]),
            "superstep": int(state["superstep"]),
            "base_superstep": int(base_superstep),
            "changed_bits": np.packbits(changed),
            "changed_values": values[changed],
            "halted_bits": np.packbits(state["halted"]),
            "pending_messages": state["pending_messages"],
            "prev_aggregates": state["prev_aggregates"],
            "stats_tail": state["stats"][base_superstep:],
        }

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def latest(self) -> CheckpointInfo | None:
        """Most recent checkpoint, or None when none exist."""
        return self._history[-1] if self._history else None

    def load_into(self, engine: PregelEngine, info: CheckpointInfo | None = None) -> float:
        """Restore *engine* from a checkpoint; returns simulated read time.

        The engine may have a different worker layout than the one that
        wrote the checkpoint (reconfiguration after eviction) — state is
        re-scattered to the new owners.  With ``info=None`` the newest
        restorable checkpoint wins: a corrupted delta (bad CRC, missing
        base, undecodable payload) makes the restore fall back through
        the history to the most recent intact snapshot.
        """
        if info is not None:
            return self._restore_one(engine, info)
        if not self._history:
            raise LookupError(f"no checkpoints stored for job {self.job_id!r}")
        failure: CheckpointCorruptionError | None = None
        for candidate in reversed(self._history):
            try:
                read_time = self._restore_one(engine, candidate)
            except CheckpointCorruptionError as exc:
                failure = exc
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "checkpoint.fallback",
                        superstep=candidate.superstep,
                        kind=candidate.kind,
                        reason=str(exc),
                    )
                    get_metrics().counter(
                        "checkpoint_fallbacks_total",
                        "Corrupted checkpoints skipped during restore",
                    ).inc(1, job_id=self.job_id)
                continue
            return read_time
        raise CheckpointCorruptionError(
            f"no restorable checkpoint for job {self.job_id!r}: {failure}"
        )

    def _restore_one(self, engine: PregelEngine, info: CheckpointInfo) -> float:
        stored, read_time = self._fetch(info.key)
        state = stored
        if isinstance(stored, dict) and stored.get("format") == 3:
            payload = self._decode_envelope(info.key, stored)
            if stored["kind"] == "delta":
                base_key = stored.get("base_key")
                if base_key is None:
                    raise CheckpointCorruptionError(
                        f"delta checkpoint {info.key} has no base snapshot"
                    )
                base_stored, base_read = self._fetch(base_key)
                read_time += base_read
                if not (
                    isinstance(base_stored, dict) and base_stored.get("format") == 3
                ):
                    raise CheckpointCorruptionError(
                        f"base snapshot {base_key} is not a format-3 envelope"
                    )
                base_state = self._decode_envelope(base_key, base_stored)
                state = self._compose(base_state, payload)
            else:
                state = payload
        engine.restore_state(state)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "checkpoint.restore",
                superstep=info.superstep,
                nbytes=info.nbytes,
                sim_seconds=read_time,
                kind=info.kind,
            )
            get_metrics().counter(
                "checkpoint_restores_total", "Engine checkpoint restores"
            ).inc(1, job_id=self.job_id)
        return read_time

    def _fetch(self, key: str) -> tuple[object, float]:
        try:
            return self.datastore.get_object_timed(key)
        except KeyError as exc:
            raise CheckpointCorruptionError(f"checkpoint {key} is missing") from exc
        except Exception as exc:  # undecodable pickle, truncated blob, ...
            raise CheckpointCorruptionError(f"checkpoint {key} unreadable: {exc}") from exc

    def _decode_envelope(self, key: str, envelope: dict) -> dict:
        compressed = envelope["payload"]
        if zlib.crc32(compressed) != envelope["crc32"]:
            raise CheckpointCorruptionError(f"checkpoint {key} failed its CRC check")
        try:
            blob = _decompress(envelope["codec"], compressed)
            return pickle.loads(blob)
        except CheckpointCorruptionError:
            raise
        except Exception as exc:
            raise CheckpointCorruptionError(f"checkpoint {key} undecodable: {exc}") from exc

    @staticmethod
    def _compose(base: dict, delta: dict) -> dict:
        """Apply a delta payload on top of its full base state."""
        n = delta["num_vertices"]
        values = np.array(base["values"], copy=True)
        if len(values) != n:
            raise CheckpointCorruptionError(
                f"delta covers {n} vertices, base snapshot has {len(values)}"
            )
        changed = np.unpackbits(delta["changed_bits"], count=n).astype(bool)
        values[changed] = delta["changed_values"]
        halted = np.unpackbits(delta["halted_bits"], count=n).astype(bool)
        base_superstep = delta["base_superstep"]
        return {
            "format": 2,
            "superstep": delta["superstep"],
            "num_vertices": n,
            "values": values,
            "halted": halted,
            "pending_messages": delta["pending_messages"],
            "prev_aggregates": delta["prev_aggregates"],
            "stats": list(base["stats"])[:base_superstep] + list(delta["stats_tail"]),
        }

    def history(self) -> list[CheckpointInfo]:
        """All stored checkpoint metadata, oldest first."""
        return list(self._history)

    def _prune(self) -> None:
        """Delete checkpoints beyond ``keep_last``, chain-aware.

        A full snapshot referenced by a retained delta stays until every
        delta composing with it has itself rotated out.
        """
        if len(self._history) <= self.keep_last:
            return
        retained = self._history[-self.keep_last :]
        needed = {info.key for info in retained}
        needed.update(info.base_key for info in retained if info.base_key)
        kept = []
        for info in self._history[: -self.keep_last]:
            if info.key in needed:
                kept.append(info)
            else:
                self.datastore.delete(info.key)
        self._history = kept + retained
