"""Unified tracing & metrics for the whole stack (``repro.obs``).

One process-wide observability layer shared by the engine, the
execution lifecycle and the planning service:

* **Spans** (:mod:`repro.obs.trace`) — hierarchical, attribute-carrying
  intervals with correlation (trace) IDs that flow from a planning
  request through lifecycle phases down to individual supersteps and
  datastore transfers.
* **Metrics** (:mod:`repro.obs.metrics`) — a registry of named
  counters, gauges and bucketed histograms with labeled series per
  tenant / configuration / strategy.
* **Exporters** (:mod:`repro.obs.export`) — structured JSONL event
  logs, Prometheus text format, and Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto.
* **TracingObserver** (:mod:`repro.obs.observer`) — the lifecycle hook
  plug-in that emits the spans, sibling of
  :class:`~repro.exec.observers.MetricsObserver`.

Tracing is off by default: the installed tracer is the no-op
:data:`NULL_TRACER` and every instrumentation site guards on one
``tracer.enabled`` branch, so disabled-mode runs stay bit-identical and
effectively free.  Enable with :func:`enable` or scope it::

    from repro import obs
    with obs.tracing() as (tracer, metrics):
        simulator.run(job)
    obs.export.write_jsonl(tracer.records(), "run.jsonl")
    print(metrics.to_prometheus())
"""

from repro.obs import export, report
from repro.obs.events import TimelineEvent
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import TracingObserver
from repro.obs.state import (
    disable,
    enable,
    get_metrics,
    get_tracer,
    tracing,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanRecord",
    "TimelineEvent",
    "Tracer",
    "TracingObserver",
    "disable",
    "enable",
    "export",
    "get_metrics",
    "get_tracer",
    "report",
    "tracing",
]
