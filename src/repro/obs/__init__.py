"""Unified tracing & metrics for the whole stack (``repro.obs``).

One process-wide observability layer shared by the engine, the
execution lifecycle and the planning service:

* **Spans** (:mod:`repro.obs.trace`) — hierarchical, attribute-carrying
  intervals with correlation (trace) IDs that flow from a planning
  request through lifecycle phases down to individual supersteps and
  datastore transfers.
* **Metrics** (:mod:`repro.obs.metrics`) — a registry of named
  counters, gauges and bucketed histograms with labeled series per
  tenant / configuration / strategy.
* **Exporters** (:mod:`repro.obs.export`) — structured JSONL event
  logs, Prometheus text format, and Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto.
* **TracingObserver** (:mod:`repro.obs.observer`) — the lifecycle hook
  plug-in that emits the spans, sibling of
  :class:`~repro.exec.observers.MetricsObserver`.
* **Live operations** — windowed aggregation over the registry
  (:mod:`repro.obs.window`), declarative burn-rate SLOs
  (:mod:`repro.obs.slo`), per-tenant cost attribution
  (:mod:`repro.obs.attribution`) and the scrapeable HTTP endpoint
  serving all of it (:mod:`repro.obs.server`).

Tracing is off by default: the installed tracer is the no-op
:data:`NULL_TRACER` and every instrumentation site guards on one
``tracer.enabled`` branch, so disabled-mode runs stay bit-identical and
effectively free.  Enable with :func:`enable` or scope it::

    from repro import obs
    with obs.tracing() as (tracer, metrics):
        simulator.run(job)
    obs.export.write_jsonl(tracer.records(), "run.jsonl")
    print(metrics.to_prometheus())
"""

from repro.obs import export, report
from repro.obs.attribution import CostLedger, LedgerObserver, TenantUsage
from repro.obs.events import TimelineEvent
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    estimate_quantile,
)
from repro.obs.observer import TracingObserver
from repro.obs.server import OpsServer
from repro.obs.slo import (
    BurnRateRule,
    SloAlert,
    SloMonitor,
    SloObjective,
    default_slos,
)
from repro.obs.state import (
    disable,
    enable,
    get_metrics,
    get_tracer,
    tracing,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer
from repro.obs.window import (
    DEFAULT_WINDOWS,
    SamplerThread,
    WindowConfig,
    WindowedAggregator,
)

__all__ = [
    "BurnRateRule",
    "CostLedger",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_WINDOWS",
    "Gauge",
    "Histogram",
    "LedgerObserver",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OpsServer",
    "SamplerThread",
    "SloAlert",
    "SloMonitor",
    "SloObjective",
    "Span",
    "SpanRecord",
    "TenantUsage",
    "TimelineEvent",
    "Tracer",
    "TracingObserver",
    "WindowConfig",
    "WindowedAggregator",
    "default_slos",
    "disable",
    "enable",
    "estimate_quantile",
    "export",
    "get_metrics",
    "get_tracer",
    "report",
    "tracing",
]
