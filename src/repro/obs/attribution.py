"""Per-tenant cost attribution: who spent what, live.

The write-side instrumentation already measures everything a bill needs
— :class:`~repro.exec.billing.BillingMeter` splits machine-seconds by
market segment, :class:`~repro.service.planning.PlanTelemetry` carries
planning latencies, and :class:`~repro.exec.events.RunResult` carries
evictions/rescales — but none of it is keyed by *tenant*.
:class:`CostLedger` is the join: a thread-safe accumulator of
:class:`TenantUsage` rows (dollars, spot/on-demand/idle machine-seconds,
deadline compliance, planning spend) queryable at any instant while a
load run is in flight, in the spirit of the Granny provider/user cost
split the load report prints at the end.

Two feeding patterns:

* the load harness records each executed job against its trace tenant
  (:meth:`CostLedger.record_run`), which is how a million-job trace gets
  attributed without threading tenant identity through the shared
  simulators; and
* :class:`LedgerObserver` rides the lifecycle observer bus for
  runtime-style executions, metering spend *during* the run via the
  :meth:`~repro.exec.billing.BillingMeter` ``on_bill`` hook and closing
  the run's outcome at ``on_finish``.

When built with a metrics registry the ledger also mirrors itself as
``tenant_*`` series, so per-tenant spend is scrapeable and windowable
like every other metric.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TenantUsage:
    """One tenant's accumulated usage (immutable snapshot row).

    Attributes:
        tenant: tenant identity the row is keyed by.
        runs / missed: executed runs and deadline misses among them.
        dollars: total billed spend.
        spot_seconds / on_demand_seconds: billed machine-seconds per
            market segment.
        idle_seconds: billed machine-seconds beyond ideal compute
            (the Granny provider-cost share this tenant caused).
        service_time_s: arrival-to-finish seconds summed over runs.
        evictions / rescales: lifecycle events suffered / planned.
        plans / plan_seconds: planning decisions and their wall-clock
            cost.
    """

    tenant: str
    runs: int = 0
    missed: int = 0
    dollars: float = 0.0
    spot_seconds: float = 0.0
    on_demand_seconds: float = 0.0
    idle_seconds: float = 0.0
    service_time_s: float = 0.0
    evictions: int = 0
    rescales: int = 0
    plans: int = 0
    plan_seconds: float = 0.0

    @property
    def machine_seconds(self) -> float:
        """Total billed machine-seconds (both market segments)."""
        return self.spot_seconds + self.on_demand_seconds

    @property
    def slo_compliance(self) -> float:
        """Fraction of executed runs that met their deadline (1.0 idle)."""
        return 1.0 - (self.missed / self.runs) if self.runs else 1.0

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "runs": self.runs,
            "missed": self.missed,
            "slo_compliance": round(self.slo_compliance, 6),
            "dollars": round(self.dollars, 6),
            "spot_seconds": round(self.spot_seconds, 3),
            "on_demand_seconds": round(self.on_demand_seconds, 3),
            "idle_seconds": round(self.idle_seconds, 3),
            "service_time_s": round(self.service_time_s, 3),
            "evictions": self.evictions,
            "rescales": self.rescales,
            "plans": self.plans,
            "plan_seconds": round(self.plan_seconds, 6),
        }


@dataclass
class _Row:
    """Mutable accumulator behind one tenant's usage."""

    tenant: str
    runs: int = 0
    missed: int = 0
    dollars: float = 0.0
    spot_seconds: float = 0.0
    on_demand_seconds: float = 0.0
    idle_seconds: float = 0.0
    service_time_s: float = 0.0
    evictions: int = 0
    rescales: int = 0
    plans: int = 0
    plan_seconds: float = 0.0

    def freeze(self) -> TenantUsage:
        return TenantUsage(
            tenant=self.tenant,
            runs=self.runs,
            missed=self.missed,
            dollars=self.dollars,
            spot_seconds=self.spot_seconds,
            on_demand_seconds=self.on_demand_seconds,
            idle_seconds=self.idle_seconds,
            service_time_s=self.service_time_s,
            evictions=self.evictions,
            rescales=self.rescales,
            plans=self.plans,
            plan_seconds=self.plan_seconds,
        )


class CostLedger:
    """Thread-safe per-tenant usage accumulator.

    Args:
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, spend and outcomes are mirrored as
            ``tenant_cost_dollars_total``, ``tenant_machine_seconds_total``
            (labelled by market segment), ``tenant_idle_machine_seconds_total``
            and ``tenant_runs_total`` (labelled by outcome) series.
    """

    def __init__(self, metrics=None):
        self.metrics = metrics
        self._lock = threading.Lock()
        self._rows: dict[str, _Row] = {}

    def _row(self, tenant: str) -> _Row:
        row = self._rows.get(tenant)
        if row is None:
            row = self._rows[tenant] = _Row(tenant=tenant)
        return row

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def record_plan(self, tenant: str, latency_s: float) -> None:
        """Attribute one planning decision's wall-clock cost."""
        with self._lock:
            row = self._row(tenant)
            row.plans += 1
            row.plan_seconds += latency_s

    def record_bill(
        self, tenant: str, dollars: float, machine_seconds: float, transient: bool
    ) -> None:
        """Attribute one billed interval (live, mid-run spend)."""
        with self._lock:
            row = self._row(tenant)
            row.dollars += dollars
            if transient:
                row.spot_seconds += machine_seconds
            else:
                row.on_demand_seconds += machine_seconds
        if self.metrics is not None:
            self.metrics.counter(
                "tenant_cost_dollars_total", "Billed dollars per tenant"
            ).inc(dollars, tenant=tenant)
            self.metrics.counter(
                "tenant_machine_seconds_total",
                "Billed machine-seconds per tenant and market segment",
            ).inc(machine_seconds, tenant=tenant, segment="spot" if transient else "on_demand")

    def record_outcome(
        self,
        tenant: str,
        result,
        ideal_seconds: float = 0.0,
        arrival: float | None = None,
    ) -> None:
        """Close one executed run's outcome (dollars already metered).

        Use after live :meth:`record_bill` metering (the
        :class:`LedgerObserver` path); *ideal_seconds* is the run's
        ideal compute (``t_exec(lrc) x workers``) for the idle split,
        *arrival* anchors service time.
        """
        billed = result.spot_seconds + result.on_demand_seconds
        idle = max(0.0, billed - ideal_seconds) if ideal_seconds > 0 else 0.0
        missed = bool(result.missed_deadline)
        with self._lock:
            row = self._row(tenant)
            row.runs += 1
            row.missed += missed
            row.idle_seconds += idle
            row.evictions += result.evictions
            row.rescales += result.rescales
            if arrival is not None:
                row.service_time_s += result.finish_time - arrival
        if self.metrics is not None:
            self.metrics.counter(
                "tenant_runs_total", "Executed runs per tenant by outcome"
            ).inc(1, tenant=tenant, outcome="missed" if missed else "met")
            if idle:
                self.metrics.counter(
                    "tenant_idle_machine_seconds_total",
                    "Billed machine-seconds beyond ideal compute per tenant",
                ).inc(idle, tenant=tenant)

    def record_run(
        self,
        tenant: str,
        result,
        ideal_seconds: float = 0.0,
        arrival: float | None = None,
    ) -> None:
        """Attribute one completed run wholesale (bill + outcome).

        The batch path: the harness already holds the finished
        :class:`~repro.exec.events.RunResult`, whose cost and
        machine-second split the :class:`~repro.exec.billing.BillingMeter`
        produced.
        """
        self.record_bill(tenant, result.cost, result.spot_seconds, True)
        if result.on_demand_seconds:
            self.record_bill(tenant, 0.0, result.on_demand_seconds, False)
        self.record_outcome(tenant, result, ideal_seconds, arrival)

    # ------------------------------------------------------------------
    # Querying (any thread, any time)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, TenantUsage]:
        """Immutable tenant -> usage view of this instant."""
        with self._lock:
            return {tenant: row.freeze() for tenant, row in self._rows.items()}

    def totals(self) -> TenantUsage:
        """Every tenant folded into one row (tenant ``"*"``)."""
        total = TenantUsage(tenant="*")
        for usage in self.snapshot().values():
            total = replace(
                total,
                runs=total.runs + usage.runs,
                missed=total.missed + usage.missed,
                dollars=total.dollars + usage.dollars,
                spot_seconds=total.spot_seconds + usage.spot_seconds,
                on_demand_seconds=total.on_demand_seconds + usage.on_demand_seconds,
                idle_seconds=total.idle_seconds + usage.idle_seconds,
                service_time_s=total.service_time_s + usage.service_time_s,
                evictions=total.evictions + usage.evictions,
                rescales=total.rescales + usage.rescales,
                plans=total.plans + usage.plans,
                plan_seconds=total.plan_seconds + usage.plan_seconds,
            )
        return total

    def as_dict(self) -> dict:
        """The ``/tenants`` endpoint payload (rows sorted by spend)."""
        rows = sorted(
            self.snapshot().values(), key=lambda u: (-u.dollars, u.tenant)
        )
        return {
            "tenants": [usage.as_dict() for usage in rows],
            "totals": self.totals().as_dict(),
        }


class LedgerObserver:
    """Lifecycle observer attributing one executor's runs to a tenant.

    Implements the full observer protocol (identity adjustments), like
    :class:`~repro.obs.observer.TracingObserver` — it deliberately does
    not subclass :class:`~repro.exec.observers.LifecycleObserver` to
    keep the ``exec -> obs`` dependency one-way.

    Args:
        ledger: the shared :class:`CostLedger`.
        tenant: identity runs are attributed to.
        ideal_seconds: per-run ideal compute for the idle split.
    """

    def __init__(self, ledger: CostLedger, tenant: str, ideal_seconds: float = 0.0):
        self.ledger = ledger
        self.tenant = tenant
        self.ideal_seconds = ideal_seconds
        self._run_started: float | None = None

    # Observation hooks -------------------------------------------------
    def on_run_start(self, t: float) -> None:
        self._run_started = t

    def on_decision(self, t: float, telemetry) -> None:
        self.ledger.record_plan(self.tenant, telemetry.latency_s)

    def on_bill(self, t: float, config, seconds: float, dollars: float) -> None:
        """Live spend: one billed interval, attributed immediately."""
        self.ledger.record_bill(
            self.tenant, dollars, seconds * config.num_workers, config.is_transient
        )

    def on_deploy(self, t: float, config, setup_seconds: float) -> None:
        pass

    def on_eviction(self, t: float, config) -> None:
        pass

    def on_checkpoint(self, t: float, config, seconds: float, persisted: bool) -> None:
        pass

    def on_forced_handover(self, t: float, config) -> None:
        pass

    def on_rescale(self, t: float, config, decision) -> None:
        pass

    def on_finish(self, t: float, result) -> None:
        """Close the outcome; dollars were metered live by on_bill."""
        self.ledger.record_outcome(
            self.tenant, result, self.ideal_seconds, arrival=self._run_started
        )
        self._run_started = None

    # Adjustment hooks (identity — attribution never perturbs the run) -
    def adjust_setup_time(self, t, config, setup_seconds):
        return setup_seconds

    def adjust_eviction_time(self, t, config, eviction_at):
        return eviction_at

    def plan_checkpoint_write(self, t, config, save_seconds, index):
        return None
