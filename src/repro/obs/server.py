"""Scrapeable ops endpoint over the live observability objects.

:class:`OpsServer` wraps a stdlib ``ThreadingHTTPServer`` (no external
dependencies, like everything in :mod:`repro.obs`) and serves four
read-only views of a running process:

* ``GET /metrics`` — the registry rendered in Prometheus text
  exposition format (:meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`),
  directly scrapeable and round-trippable through
  :func:`~repro.obs.export.parse_prometheus`;
* ``GET /health`` — liveness JSON (uptime, sample count, evaluation
  count) — cheap enough for an orchestrator probe;
* ``GET /slo`` — the :class:`~repro.obs.slo.SloMonitor` payload:
  per-objective windowed observations, burn rates, firing rules;
* ``GET /tenants`` — the :class:`~repro.obs.attribution.CostLedger`
  payload: per-tenant dollars, machine-seconds, compliance.

Every handler reads immutable snapshots produced by the aggregation
layer, so scrapes never block instrumentation writers.  The server
optionally owns the :class:`~repro.obs.window.SamplerThread` driving the
aggregator + SLO evaluation, making ``with OpsServer(...) as srv:`` the
one-liner that turns any instrumented run into an observable one.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


class OpsServer:
    """Background HTTP server exposing metrics, SLOs and attribution.

    Args:
        registry: :class:`~repro.obs.metrics.MetricsRegistry` behind
            ``/metrics``.
        aggregator: optional :class:`~repro.obs.window.WindowedAggregator`
            (enables sampler ownership and the health sample count).
        monitor: optional :class:`~repro.obs.slo.SloMonitor` behind
            ``/slo``.
        ledger: optional :class:`~repro.obs.attribution.CostLedger`
            behind ``/tenants``.
        host / port: bind address; port 0 picks an ephemeral port
            (read it back from :attr:`port` after :meth:`start`).
        sample_interval: when set (seconds) and *aggregator* is given,
            the server runs its own
            :class:`~repro.obs.window.SamplerThread` sampling at this
            interval and evaluating *monitor* after each sample.
    """

    def __init__(
        self,
        registry,
        aggregator=None,
        monitor=None,
        ledger=None,
        host: str = "127.0.0.1",
        port: int = 0,
        sample_interval: float | None = None,
    ):
        self.registry = registry
        self.aggregator = aggregator
        self.monitor = monitor
        self.ledger = ledger
        self.host = host
        self.port = port
        self.sample_interval = sample_interval
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._sampler = None
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    def start(self) -> "OpsServer":
        """Bind, start serving in a daemon thread; idempotent."""
        if self._httpd is not None:
            return self
        self._httpd = ThreadingHTTPServer(
            (self.host, self.port), _make_handler(self)
        )
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-ops-server",
            daemon=True,
        )
        self._thread.start()
        if self.sample_interval and self.aggregator is not None:
            from repro.obs.window import SamplerThread

            callbacks = (self.monitor.evaluate,) if self.monitor else ()
            self._sampler = SamplerThread(
                self.aggregator, self.sample_interval, on_sample=callbacks
            ).start()
        return self

    def close(self) -> None:
        """Stop the sampler (if owned) and the HTTP server."""
        if self._sampler is not None:
            self._sampler.close()
            self._sampler = None
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Payloads (handler calls these; also handy for in-process tests)
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        return self.registry.to_prometheus()

    def health(self) -> dict:
        up = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        payload = {"status": "ok", "uptime_s": round(up, 3)}
        if self.aggregator is not None:
            payload["samples"] = self.aggregator.samples_taken
        if self.monitor is not None:
            payload["slo_evaluations"] = self.monitor.evaluations
        return payload

    def slo(self) -> dict | None:
        return self.monitor.as_dict() if self.monitor is not None else None

    def tenants(self) -> dict | None:
        return self.ledger.as_dict() if self.ledger is not None else None


_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _make_handler(server: OpsServer):
    """A handler class closed over the owning :class:`OpsServer`."""

    class Handler(BaseHTTPRequestHandler):
        # One ops scrape should never spam the run's stderr.
        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass

        def _send(self, status: int, content_type: str, body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, payload, status: int = 200) -> None:
            body = json.dumps(payload, sort_keys=True, indent=1).encode()
            self._send(status, "application/json; charset=utf-8", body)

        def do_GET(self):  # noqa: N802 - stdlib hook name
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/metrics":
                    self._send(
                        200, _PROM_CONTENT_TYPE, server.metrics_text().encode()
                    )
                elif path == "/health" or path == "/":
                    self._send_json(server.health())
                elif path == "/slo":
                    payload = server.slo()
                    if payload is None:
                        self._send_json({"error": "no SLO monitor"}, 404)
                    else:
                        self._send_json(payload)
                elif path == "/tenants":
                    payload = server.tenants()
                    if payload is None:
                        self._send_json({"error": "no cost ledger"}, 404)
                    else:
                        self._send_json(payload)
                else:
                    self._send_json({"error": f"unknown path {path}"}, 404)
            except BrokenPipeError:
                pass  # scraper hung up mid-response
            except Exception as exc:  # pragma: no cover - defensive
                try:
                    self._send_json({"error": repr(exc)}, 500)
                except Exception:
                    pass

    return Handler
