"""Exporters: JSONL event log, Chrome trace_event JSON, Prometheus text.

Three views of the same records:

* **JSONL** — one JSON object per line in the schema of
  :meth:`~repro.obs.trace.SpanRecord.as_dict`; the machine-readable
  archive format (:func:`write_jsonl` / :func:`read_jsonl`), validated
  line by line with :func:`validate_record`.
* **Chrome trace_event** — a ``{"traceEvents": [...]}`` document that
  loads directly in ``chrome://tracing`` and Perfetto
  (:func:`to_chrome_trace` / :func:`write_chrome_trace`).  Spans become
  complete (``"X"``) events, instants become instant (``"i"``) events;
  rows (tids) are trace ids, labeled by the root span's tenant/job
  attributes, and the simulated and wall clocks land in separate
  process groups so their timelines never interleave.
* **Prometheus** — the registry renders itself
  (:meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`);
  :func:`parse_prometheus` is the matching minimal parser used by tests
  and the CI exporter smoke job to validate the output.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.trace import CLOCK_ATTR, CLOCK_WALL, SpanRecord

#: JSONL event schema: field name -> allowed types.
EVENT_SCHEMA = {
    "kind": str,
    "name": str,
    "trace_id": int,
    "span_id": int,
    "parent_id": (int, type(None)),
    "t0": (int, float),
    "t1": (int, float),
    "attrs": dict,
}

_SCALAR_ATTR_TYPES = (str, int, float, bool, type(None))


def validate_record(record: dict) -> dict:
    """Check one decoded JSONL line against :data:`EVENT_SCHEMA`.

    Returns the record unchanged; raises ``ValueError`` with the
    offending field on any violation.
    """
    if not isinstance(record, dict):
        raise ValueError(f"record must be an object, got {type(record).__name__}")
    for field, types in EVENT_SCHEMA.items():
        if field not in record:
            raise ValueError(f"record missing field {field!r}")
        if not isinstance(record[field], types):
            raise ValueError(
                f"field {field!r} has type {type(record[field]).__name__}"
            )
    extra = set(record) - set(EVENT_SCHEMA)
    if extra:
        raise ValueError(f"record has unknown fields {sorted(extra)}")
    if record["kind"] not in ("span", "event"):
        raise ValueError(f"kind must be 'span' or 'event', got {record['kind']!r}")
    if record["t1"] < record["t0"]:
        raise ValueError(f"span ends before it starts: {record['t1']} < {record['t0']}")
    if record["kind"] == "event" and record["t1"] != record["t0"]:
        raise ValueError("events must have t1 == t0")
    for key, value in record["attrs"].items():
        if not isinstance(key, str):
            raise ValueError(f"attr key {key!r} is not a string")
        if not isinstance(value, _SCALAR_ATTR_TYPES):
            raise ValueError(f"attr {key!r} has non-scalar value {value!r}")
    return record


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def to_jsonl(records) -> str:
    """Records as newline-delimited JSON (one object per line)."""
    return "".join(
        json.dumps(r.as_dict(), sort_keys=True, default=_jsonable) + "\n"
        for r in records
    )


def _jsonable(value):
    # Numpy scalars and similar ride in attrs; coerce to plain numbers.
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"attr value {value!r} is not JSON-serialisable")


def write_jsonl(records, path) -> Path:
    """Write :func:`to_jsonl` output to *path*; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(records))
    return path


def read_jsonl(path) -> list[SpanRecord]:
    """Load and validate a JSONL event log back into records."""
    records = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            raw = validate_record(json.loads(line))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
        records.append(
            SpanRecord(
                kind=raw["kind"],
                name=raw["name"],
                trace_id=raw["trace_id"],
                span_id=raw["span_id"],
                parent_id=raw["parent_id"],
                t0=raw["t0"],
                t1=raw["t1"],
                attrs=tuple(sorted(raw["attrs"].items())),
            )
        )
    return records


# ----------------------------------------------------------------------
# Chrome trace_event JSON (chrome://tracing, Perfetto)
# ----------------------------------------------------------------------
_SIM_PID = 1
_WALL_PID = 2


def to_chrome_trace(records) -> dict:
    """Records as a Chrome ``trace_event`` document (dict).

    Timestamps are microseconds; each trace id is one row (tid), named
    after the root span's ``tenant``/``job_id`` attributes when present.
    """
    events = [
        {"ph": "M", "name": "process_name", "pid": _SIM_PID, "tid": 0,
         "args": {"name": "simulated time"}},
        {"ph": "M", "name": "process_name", "pid": _WALL_PID, "tid": 0,
         "args": {"name": "wall clock"}},
    ]
    named_rows = set()
    for record in records:
        attrs = dict(record.attrs)
        pid = _WALL_PID if attrs.get(CLOCK_ATTR) == CLOCK_WALL else _SIM_PID
        tid = record.trace_id
        if record.parent_id is None and (pid, tid) not in named_rows:
            named_rows.add((pid, tid))
            label = attrs.get("tenant") or attrs.get("job_id")
            if label:
                job = attrs.get("job_id")
                name = f"{label}/{job}" if job and job != label else str(label)
                events.append(
                    {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                     "args": {"name": name}}
                )
        base = {
            "name": record.name,
            "cat": record.name,
            "pid": pid,
            "tid": tid,
            "ts": record.t0 * 1e6,
            "args": {k: v for k, v in attrs.items() if k != CLOCK_ATTR},
        }
        if record.kind == "span":
            base["ph"] = "X"
            base["dur"] = max(0.0, record.duration) * 1e6
        else:
            base["ph"] = "i"
            base["s"] = "t"
        events.append(base)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records, path) -> Path:
    """Write :func:`to_chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(records), default=_jsonable))
    return path


# ----------------------------------------------------------------------
# Prometheus text format parser (validation counterpart of the renderer)
# ----------------------------------------------------------------------
def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    *labels* is a sorted tuple of ``(key, value)`` string pairs.  The
    parser understands exactly what
    :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus` emits
    (HELP/TYPE comments, labeled samples, ``+Inf``), raising
    ``ValueError`` on malformed lines — which is what makes it useful as
    an exporter validator.
    """
    samples: dict = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                types[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        name, labels, value = _parse_sample(line, lineno)
        key = (name, labels)
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {line!r}")
        samples[key] = value
    for name, _labels in samples:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        if base not in types:
            raise ValueError(f"sample {name!r} has no # TYPE line")
    return samples


def _parse_sample(line: str, lineno: int) -> tuple[str, tuple, float]:
    if "{" in line:
        name, rest = line.split("{", 1)
        if "}" not in rest:
            raise ValueError(f"line {lineno}: unterminated label set {line!r}")
        label_text, value_text = rest.rsplit("}", 1)
        labels = []
        for part in _split_labels(label_text):
            if "=" not in part:
                raise ValueError(f"line {lineno}: malformed label {part!r}")
            key, raw = part.split("=", 1)
            if len(raw) < 2 or raw[0] != '"' or raw[-1] != '"':
                raise ValueError(f"line {lineno}: unquoted label value {part!r}")
            labels.append((key.strip(), _unescape_label(raw[1:-1])))
        labels = tuple(sorted(labels))
    else:
        name, _, value_text = line.partition(" ")
        labels = ()
    name = name.strip()
    if not name or not name.replace("_", "a").replace(":", "a").isalnum():
        raise ValueError(f"line {lineno}: malformed metric name {name!r}")
    value_text = value_text.strip()
    try:
        value = math.inf if value_text == "+Inf" else float(value_text)
    except ValueError as exc:
        raise ValueError(f"line {lineno}: malformed value {value_text!r}") from exc
    return name, labels, value


def _unescape_label(raw: str) -> str:
    """Decode a quoted label value, consuming escapes left to right.

    Sequential ``str.replace`` passes mis-decode values whose escaped
    backslash precedes an ``n`` (``\\\\n`` — a literal backslash then the
    letter n — must not become backslash + newline).
    """
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and i + 1 < len(raw):
            nxt = raw[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _split_labels(text: str):
    """Split ``k="v",k2="v2"`` on commas outside quotes."""
    parts, current, in_quotes, escaped = [], [], False, False
    for ch in text:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]
