"""TracingObserver: lifecycle phases as spans on the simulated timeline.

The sibling of :class:`~repro.exec.observers.MetricsObserver` on the
lifecycle hook bus.  Where MetricsObserver keeps flat per-run counters,
this observer emits the cross-layer trace: one ``run`` root span per
execution (carrying the job/tenant correlation attributes), ``setup``
and ``checkpoint`` child spans, ``decision``/``eviction``/``finish``
instant events — all stamped with *simulated* time — and labeled series
into the metrics registry (deployments, evictions, checkpoint seconds,
eviction inter-arrivals, decision latency).

While the run span is open it is *activated* on the tracer's context,
so planning-service ``plan`` spans and engine ``superstep`` spans
emitted anywhere below the run inherit its trace id: that trace id is
the correlation ID that makes every superstep attributable to the plan
requests of the same execution.

This class deliberately does not inherit from
:class:`~repro.exec.observers.LifecycleObserver` (it would invert the
``exec -> obs`` dependency); it implements the full observer protocol,
with identity adjustment hooks.
"""

from __future__ import annotations

from repro.obs.state import get_metrics, get_tracer


class TracingObserver:
    """Emit lifecycle spans/metrics for every run of one executor.

    Args:
        tracer: explicit tracer (default: the process tracer, resolved
            at each run start so enabling tracing mid-session works).
        metrics: explicit registry (default: the process registry).
        job_id: base job identifier; run *k* is ``"<job_id>#<k>"``.
        tenant: tenant label for spans and metric series.
        strategy: strategy label for spans and metric series.
    """

    def __init__(
        self,
        tracer=None,
        metrics=None,
        job_id: str = "job",
        tenant: str = "-",
        strategy: str = "-",
    ):
        self.tracer = tracer
        self.metrics = metrics
        self.job_id = job_id
        self.tenant = tenant
        self.strategy = strategy
        self._runs = 0
        self._tr = None
        self._mx = None
        self._run_span = None
        self._run_started = 0.0
        self._last_eviction: float | None = None

    # ------------------------------------------------------------------
    # Observation hooks
    # ------------------------------------------------------------------
    def on_run_start(self, t: float) -> None:
        """Open (and activate) this run's root span."""
        self._tr = self.tracer if self.tracer is not None else get_tracer()
        self._mx = self.metrics if self.metrics is not None else get_metrics()
        if self._run_span is not None:  # previous run died mid-flight
            self._run_span.set(aborted=True).end(t)
            self._run_span = None
        self._runs += 1
        self._run_started = t
        self._last_eviction = None
        if not self._tr.enabled:
            return
        self._run_span = self._tr.span(
            "run",
            t=t,
            job_id=f"{self.job_id}#{self._runs}",
            tenant=self.tenant,
            strategy=self.strategy,
        ).activate()
        self._mx.counter("runs_started_total", "Executions begun").inc(
            1, tenant=self.tenant, strategy=self.strategy
        )

    def _off(self) -> bool:
        return self._tr is None or not self._tr.enabled

    def on_decision(self, t: float, telemetry) -> None:
        """Record the decision instant plus its real planning latency."""
        if self._off():
            return
        self._tr.event(
            "decision",
            t=t,
            latency_s=telemetry.latency_s,
            warm=telemetry.estimator_reused,
            memo_hits=telemetry.memo_hits,
            memo_misses=telemetry.memo_misses,
            snapshot_reused=telemetry.snapshot_reused,
        )
        self._mx.histogram(
            "decision_latency_seconds",
            "Wall-clock planning latency per lifecycle decision",
        ).observe(telemetry.latency_s, tenant=self.tenant, strategy=self.strategy)

    def on_deploy(self, t: float, config, setup_seconds: float) -> None:
        """Record the deployment's setup phase as a span."""
        if self._off():
            return
        self._tr.record_span(
            "setup", t, t + setup_seconds, config=config.name
        )
        self._mx.counter("deployments_total", "Deployments started").inc(
            1, tenant=self.tenant, config=config.name
        )
        self._mx.histogram(
            "setup_seconds", "Simulated boot+load seconds per deployment"
        ).observe(setup_seconds, tenant=self.tenant, config=config.name)

    def on_eviction(self, t: float, config) -> None:
        """Record the eviction instant and its inter-arrival gap."""
        if self._off():
            return
        self._tr.event("eviction", t=t, config=config.name)
        self._mx.counter("evictions_total", "Evictions suffered").inc(
            1, tenant=self.tenant, config=config.name
        )
        if self._last_eviction is not None:
            self._mx.histogram(
                "eviction_interarrival_seconds",
                "Simulated seconds between consecutive evictions of a run",
            ).observe(t - self._last_eviction, tenant=self.tenant)
        self._last_eviction = t

    def on_checkpoint(self, t: float, config, seconds: float, persisted: bool) -> None:
        """Record the checkpoint write as a span ending at *t*."""
        if self._off():
            return
        self._tr.record_span(
            "checkpoint",
            t - seconds,
            t,
            config=config.name,
            persisted=persisted,
        )
        self._mx.counter("checkpoints_total", "Checkpoint writes").inc(
            1, tenant=self.tenant, persisted=persisted
        )
        self._mx.histogram(
            "checkpoint_seconds", "Simulated seconds per checkpoint write"
        ).observe(seconds, tenant=self.tenant, config=config.name)

    def on_forced_handover(self, t: float, config) -> None:
        """Record the forced decision point."""
        if not self._off():
            self._tr.event("forced-handover", t=t, config=config.name)

    def on_rescale(self, t: float, config, decision) -> None:
        """Record a mid-run rescale decision."""
        if self._off():
            return
        self._tr.event(
            "rescale",
            t=t,
            config=config.name,
            target=decision.target.name,
            reason=decision.reason,
        )
        self._mx.counter("rescales_total", "Mid-run rescale decisions").inc(
            1, tenant=self.tenant, reason=decision.reason
        )

    def on_bill(self, t: float, config, seconds: float, dollars: float) -> None:
        """Record one billed interval (live spend)."""
        if self._off():
            return
        self._mx.counter(
            "billed_dollars_total", "Dollars billed across runs"
        ).inc(dollars, tenant=self.tenant, config=config.name)
        self._mx.counter(
            "billed_machine_seconds_total",
            "Machine-seconds billed across runs",
        ).inc(seconds * config.num_workers, tenant=self.tenant,
              segment="spot" if config.is_transient else "on_demand")

    def on_finish(self, t: float, result) -> None:
        """Close the run span with the headline outcome attributes."""
        if self._off():
            return
        self._tr.event("finish", t=t)
        if self._run_span is not None:
            self._run_span.set(
                cost=result.cost,
                makespan=t - self._run_started,
                evictions=result.evictions,
                deployments=result.deployments,
                checkpoints=result.checkpoints,
                supersteps=result.supersteps,
                missed_deadline=result.missed_deadline,
            ).end(t)
            self._run_span = None
        self._mx.histogram(
            "run_makespan_seconds", "Simulated makespan per execution"
        ).observe(t - self._run_started, tenant=self.tenant, strategy=self.strategy)
        self._mx.histogram(
            "run_cost_dollars", "Dollars billed per execution"
        ).observe(result.cost, tenant=self.tenant, strategy=self.strategy)

    # ------------------------------------------------------------------
    # Adjustment hooks (identity — tracing never perturbs the run)
    # ------------------------------------------------------------------
    def adjust_setup_time(self, t, config, setup_seconds):
        """Identity: observation only."""
        return setup_seconds

    def adjust_eviction_time(self, t, config, eviction_at):
        """Identity: observation only."""
        return eviction_at

    def plan_checkpoint_write(self, t, config, save_seconds, index):
        """Never takes over a write: observation only."""
        return None
