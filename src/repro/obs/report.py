"""Human-readable rendering of a trace: per-run timeline + histograms.

Backs ``python -m repro.experiments report --trace run.jsonl``: groups a
JSONL event stream by trace (one trace per execution), prints each
run's timeline in time order, then summarises span durations per name
(count / total / mean / p50 / max) across the whole stream.

Self-contained on purpose — importing the experiments package from here
would drag the whole harness in for a text table.
"""

from __future__ import annotations

from repro.obs.trace import SpanRecord


def _table(rows: list[dict], columns: list[str]) -> str:
    rendered = [[str(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) if rendered else len(c)
        for i, c in enumerate(columns)
    ]
    lines = ["  ".join(c.ljust(w) for c, w in zip(columns, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.6f}".rstrip("0").rstrip(".") or "0"


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def group_by_trace(records) -> dict[int, list[SpanRecord]]:
    """Trace id -> its records, each list sorted by start time."""
    traces: dict[int, list[SpanRecord]] = {}
    for record in records:
        traces.setdefault(record.trace_id, []).append(record)
    for trace in traces.values():
        trace.sort(key=lambda r: (r.t0, r.span_id))
    return traces


def _trace_label(trace: list[SpanRecord]) -> str:
    for record in trace:
        if record.parent_id is None and record.kind == "span":
            job = record.attr("job_id")
            tenant = record.attr("tenant")
            parts = [p for p in (tenant, job) if p and p != "-"]
            if parts:
                return " ".join(str(p) for p in parts)
    return "(unlabeled)"


def render_timeline(trace_id: int, trace: list[SpanRecord]) -> str:
    """One run's records as a time-ordered table."""
    rows = []
    for record in trace:
        attrs = ", ".join(
            f"{k}={v}" for k, v in record.attrs
            if k not in ("job_id", "tenant", "strategy", "clock")
        )
        rows.append(
            {
                "t0": _fmt(record.t0),
                "dur_s": _fmt(record.duration) if record.kind == "span" else "-",
                "kind": record.kind,
                "name": record.name,
                "attrs": attrs,
            }
        )
    header = f"trace {trace_id} — {_trace_label(trace)} ({len(trace)} records)"
    return header + "\n" + _table(rows, ["t0", "dur_s", "kind", "name", "attrs"])


def render_span_summary(records) -> str:
    """Span-duration histogram summary across every trace."""
    durations: dict[str, list[float]] = {}
    for record in records:
        if record.kind == "span":
            durations.setdefault(record.name, []).append(record.duration)
    rows = []
    for name in sorted(durations):
        values = sorted(durations[name])
        rows.append(
            {
                "span": name,
                "count": len(values),
                "total_s": _fmt(sum(values)),
                "mean_s": _fmt(sum(values) / len(values)),
                "p50_s": _fmt(_percentile(values, 0.5)),
                "max_s": _fmt(values[-1]),
            }
        )
    if not rows:
        return "span durations: (no spans)"
    return "span durations:\n" + _table(
        rows, ["span", "count", "total_s", "mean_s", "p50_s", "max_s"]
    )


def render_trace_report(records, max_traces: int | None = None) -> str:
    """Full report: per-trace timelines, then the span-duration summary.

    Args:
        records: :class:`SpanRecord` stream (e.g. from
            :func:`repro.obs.export.read_jsonl`).
        max_traces: cap on the number of per-trace timelines printed
            (None = all); the summary always covers every record.
    """
    records = list(records)
    if not records:
        return "(empty trace)"
    traces = group_by_trace(records)
    parts = []
    shown = 0
    for trace_id in sorted(traces):
        if max_traces is not None and shown >= max_traces:
            parts.append(f"... {len(traces) - shown} more traces elided ...")
            break
        parts.append(render_timeline(trace_id, traces[trace_id]))
        shown += 1
    parts.append(render_span_summary(records))
    return "\n\n".join(parts)
