"""Declarative SLOs with multi-window burn-rate evaluation.

Hourglass's objective function *is* an SLO: finish by the deadline at
minimum cost.  This module watches the live side of that promise — the
quantities the paper optimizes, read from the windowed aggregates of
:mod:`repro.obs.window`:

* **ratio** objectives — a bad-event counter over a total-event counter
  (deadline-miss rate, admission-reject rate), with an error budget
  ``target``;
* **quantile** objectives — a histogram quantile under a threshold
  (plan-latency p99);
* **gauge** objectives — an instantaneous level under a threshold (pool
  saturation).

Evaluation uses the SRE multi-window burn-rate pattern: the *burn rate*
is how fast the error budget is being consumed relative to the target
(``observed / target``), and one :class:`BurnRateRule` fires only when
the burn exceeds its factor over **both** a long and a short window —
the long window proves the problem is sustained, the short window proves
it is still happening.  Transitions emit structured :class:`SloAlert`
events through the process tracer (``slo.alert`` / ``slo.resolved``)
and are counted in ``slo_alerts_total``; the current burn rate of every
objective is exported as the ``slo_burn_rate`` gauge so the monitor's
own outputs are scrapeable like any other series.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs.state import get_metrics, get_tracer

#: Default rule pairs over the default 10 s / 1 m / 5 m windows: the
#: fast-burn rule pages on an acute problem, the slow-burn rule tickets
#: a simmering one (factors scaled down from the SRE workbook's 1 h/6 h
#: rules to the harness's minutes-long horizon).
DEFAULT_RULES = (
    ("page", 60.0, 10.0, 6.0),
    ("ticket", 300.0, 60.0, 2.0),
)


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alerting rule.

    Attributes:
        severity: label for the alert this rule raises.
        long_window_s / short_window_s: both windows must burn above
            *factor* for the rule to fire.
        factor: budget-consumption multiple that trips the rule (1.0 =
            exactly on budget).
    """

    severity: str
    long_window_s: float
    short_window_s: float
    factor: float

    def __post_init__(self):
        if self.short_window_s >= self.long_window_s:
            raise ValueError("short window must be shorter than the long window")
        if self.factor <= 0:
            raise ValueError("factor must be positive")


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective evaluated against windowed aggregates.

    Attributes:
        name: stable identifier (``deadline_miss_rate``).
        kind: ``"ratio"`` | ``"quantile"`` | ``"gauge"``.
        target: the objective bound — max acceptable bad/total ratio,
            quantile seconds, or gauge level.  Burn rate is
            ``observed / target``.
        metric: series the observation reads (total counter for ratio,
            histogram for quantile, gauge for gauge objectives).
        bad_metric / bad_labels: the bad-event counter for ratio
            objectives (defaults to *metric* filtered by *bad_labels*).
        labels: label filter on *metric*.
        q: the quantile for quantile objectives.
        divisor_metric / divisor_labels: optional gauge the observation
            is divided by (pool saturation = queue depth / pool size).
        rules: burn-rate rules (default :data:`DEFAULT_RULES`).
        description: one-line human explanation.
    """

    name: str
    kind: str
    target: float
    metric: str
    bad_metric: str = ""
    bad_labels: dict | None = None
    labels: dict | None = None
    q: float = 0.99
    divisor_metric: str = ""
    divisor_labels: dict | None = None
    rules: tuple = tuple(
        BurnRateRule(sev, lw, sw, f) for sev, lw, sw, f in DEFAULT_RULES
    )
    description: str = ""

    def __post_init__(self):
        if self.kind not in ("ratio", "quantile", "gauge"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.target <= 0:
            raise ValueError("target must be positive")
        if self.kind == "ratio" and not (self.bad_metric or self.bad_labels):
            raise ValueError("ratio objectives need bad_metric or bad_labels")

    # ------------------------------------------------------------------
    def observe(self, aggregator, window_s: float) -> float:
        """The objective's measured value over one window."""
        if self.kind == "ratio":
            return aggregator.ratio(
                self.bad_metric or self.metric,
                self.metric,
                window_s,
                bad_labels=self.bad_labels,
                total_labels=self.labels,
            )
        if self.kind == "quantile":
            return aggregator.quantile(self.metric, self.q, window_s, self.labels)
        value = aggregator.value(self.metric, self.labels)
        if self.divisor_metric:
            divisor = aggregator.value(self.divisor_metric, self.divisor_labels)
            return value / divisor if divisor > 0 else 0.0
        return value

    def burn_rate(self, aggregator, window_s: float) -> float:
        """Budget-consumption multiple over one window."""
        return self.observe(aggregator, window_s) / self.target


@dataclass(frozen=True)
class SloAlert:
    """One burn-rate rule transition (fired or resolved)."""

    objective: str
    severity: str
    firing: bool
    long_window_s: float
    short_window_s: float
    long_burn: float
    short_burn: float
    factor: float
    t: float


@dataclass
class SloStatus:
    """One objective's full evaluation at one instant."""

    objective: SloObjective
    windows: dict[float, float] = field(default_factory=dict)
    burn_rates: dict[float, float] = field(default_factory=dict)
    firing: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        obj = self.objective
        return {
            "name": obj.name,
            "kind": obj.kind,
            "target": obj.target,
            "description": obj.description,
            "windows": {str(w): v for w, v in sorted(self.windows.items())},
            "burn_rate": {str(w): b for w, b in sorted(self.burn_rates.items())},
            "firing": list(self.firing),
        }


class SloMonitor:
    """Evaluates objectives against one aggregator; emits alerts.

    Args:
        aggregator: the :class:`~repro.obs.window.WindowedAggregator`
            the observations read from.
        objectives: the :class:`SloObjective` set (see
            :func:`default_slos` for the stock four).
        tracer: explicit tracer for ``slo.alert`` events (default: the
            process tracer, resolved per evaluation so enabling tracing
            mid-session works).
        metrics: registry for ``slo_burn_rate`` / ``slo_alerts_total``
            (default: the process registry).  Maintained unconditionally
            — SLO evaluations are rare enough that gating them behind
            the tracer would only hide the compliance story.
    """

    def __init__(self, aggregator, objectives, tracer=None, metrics=None):
        self.aggregator = aggregator
        self.objectives = tuple(objectives)
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.tracer = tracer
        self.metrics = metrics
        self._lock = threading.Lock()
        self._firing: set[tuple[str, str]] = set()
        self._statuses: tuple[SloStatus, ...] = ()
        self._alerts: list[SloAlert] = []
        self._evaluations = 0

    # ------------------------------------------------------------------
    def evaluate(self, now: float | None = None) -> tuple[SloStatus, ...]:
        """One full evaluation pass; returns every objective's status.

        Rule transitions (not-firing -> firing and back) emit one
        :class:`SloAlert` each, as a tracer event and an
        ``slo_alerts_total`` count; steady state is silent.
        """
        tracer = self.tracer if self.tracer is not None else get_tracer()
        metrics = self.metrics if self.metrics is not None else get_metrics()
        t = now if now is not None else self.aggregator.clock()
        burn_gauge = metrics.gauge(
            "slo_burn_rate", "Error-budget burn multiple per objective/window"
        )
        statuses = []
        alerts: list[SloAlert] = []
        with self._lock:
            for objective in self.objectives:
                windows: dict[float, float] = {}
                burns: dict[float, float] = {}
                for window in self.aggregator.config.windows:
                    observed = objective.observe(self.aggregator, window)
                    windows[window] = observed
                    burns[window] = observed / objective.target
                    burn_gauge.set(
                        burns[window], slo=objective.name, window=f"{window:g}s"
                    )
                firing = []
                for rule in objective.rules:
                    long_burn = burns.get(
                        rule.long_window_s,
                        objective.burn_rate(self.aggregator, rule.long_window_s),
                    )
                    short_burn = burns.get(
                        rule.short_window_s,
                        objective.burn_rate(self.aggregator, rule.short_window_s),
                    )
                    now_firing = (
                        long_burn > rule.factor and short_burn > rule.factor
                    )
                    key = (objective.name, rule.severity)
                    was_firing = key in self._firing
                    if now_firing:
                        firing.append(rule.severity)
                        self._firing.add(key)
                    else:
                        self._firing.discard(key)
                    if now_firing != was_firing:
                        alerts.append(
                            SloAlert(
                                objective=objective.name,
                                severity=rule.severity,
                                firing=now_firing,
                                long_window_s=rule.long_window_s,
                                short_window_s=rule.short_window_s,
                                long_burn=long_burn,
                                short_burn=short_burn,
                                factor=rule.factor,
                                t=t,
                            )
                        )
                statuses.append(
                    SloStatus(
                        objective=objective,
                        windows=windows,
                        burn_rates=burns,
                        firing=tuple(firing),
                    )
                )
            self._statuses = tuple(statuses)
            self._evaluations += 1
            self._alerts.extend(alerts)
        for alert in alerts:
            metrics.counter(
                "slo_alerts_total", "Burn-rate rule transitions by objective"
            ).inc(
                1,
                slo=alert.objective,
                severity=alert.severity,
                firing=alert.firing,
            )
            if tracer.enabled:
                tracer.event(
                    "slo.alert" if alert.firing else "slo.resolved",
                    slo=alert.objective,
                    severity=alert.severity,
                    long_burn=alert.long_burn,
                    short_burn=alert.short_burn,
                    factor=alert.factor,
                )
        return self._statuses

    # ------------------------------------------------------------------
    def statuses(self) -> tuple[SloStatus, ...]:
        """The most recent evaluation's statuses (empty before any)."""
        with self._lock:
            return self._statuses

    def alerts(self) -> tuple[SloAlert, ...]:
        """Every rule transition observed so far, in order."""
        with self._lock:
            return tuple(self._alerts)

    @property
    def evaluations(self) -> int:
        """Evaluation passes completed."""
        with self._lock:
            return self._evaluations

    def as_dict(self) -> dict:
        """The ``/slo`` endpoint payload."""
        with self._lock:
            return {
                "evaluations": self._evaluations,
                "alerts": len(self._alerts),
                "firing": sorted(
                    f"{name}:{severity}" for name, severity in self._firing
                ),
                "objectives": [status.as_dict() for status in self._statuses],
            }


def default_slos(
    miss_rate_target: float = 0.05,
    plan_p99_target_s: float = 0.5,
    reject_rate_target: float = 0.05,
    saturation_target: float = 8.0,
) -> tuple[SloObjective, ...]:
    """The stock objectives over the harness/service series.

    The deadline-miss objective reads ``load_runs_total`` summed across
    strategies, so whichever policy a run serves — Hourglass's DP or a
    baseline like the Alourani & Kshemkalyani no-fault-tolerance
    provisioner (``--strategy spoton``) — its live miss burn rate is
    what the monitor exposes.
    """
    return (
        SloObjective(
            name="deadline_miss_rate",
            kind="ratio",
            target=miss_rate_target,
            metric="load_runs_total",
            bad_labels={"outcome": "missed"},
            description="Executed runs finishing past their deadline",
        ),
        SloObjective(
            name="plan_latency_p99",
            kind="quantile",
            target=plan_p99_target_s,
            metric="load_plan_latency_seconds",
            q=0.99,
            description="99th-percentile wall-clock planning latency (s)",
        ),
        SloObjective(
            name="admission_reject_rate",
            kind="ratio",
            target=reject_rate_target,
            metric="load_jobs_total",
            bad_labels={"outcome": "rejected_overload"},
            description="Offered jobs shed by admission control",
        ),
        SloObjective(
            name="pool_saturation",
            kind="gauge",
            target=saturation_target,
            metric="svc_pool_queue_depth",
            divisor_metric="svc_pool_size",
            description="Plan requests in system per planner worker",
        ),
    )
