"""Streaming windowed aggregation over the metrics registry.

The write side of :mod:`repro.obs` is cumulative: counters only go up,
histograms accumulate buckets forever.  Operations questions are about
*now* — "what is the deadline-miss rate over the last minute", "what is
plan-latency p99 over the last 10 seconds".  :class:`WindowedAggregator`
answers them without retaining raw samples: a sampler periodically
copies the registry's cumulative state into a ring buffer of timestamped
snapshots, and every windowed quantity is a difference of two snapshots

* **rate / delta** — ``(counter_now - counter_then) / dt`` for any
  counter series (or summed across the label sets of one metric);
* **ratio** — delta of a "bad" counter over delta of a total;
* **quantile** — the cumulative-bucket histogram counts are themselves
  diffable: the bucket deltas over a window form a windowed histogram,
  fed to :func:`~repro.obs.metrics.estimate_quantile`.

Concurrency model (lock-free per writer): metric *writers* keep their
own per-metric locks and never see the aggregator; the ring buffer has
exactly one writer (the sampling thread) appending immutable snapshot
objects to a bounded deque, which CPython readers may iterate without a
lock — queries bind a reference to the current sample list and compute
from immutable data.  Nothing in this module ever blocks an
instrumentation site.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import Counter, Gauge, Histogram, estimate_quantile

#: Default query horizons, seconds: "last 10 s / 1 m / 5 m".
DEFAULT_WINDOWS = (10.0, 60.0, 300.0)


@dataclass(frozen=True)
class WindowConfig:
    """Shape of one :class:`WindowedAggregator`.

    Attributes:
        windows: queryable horizons in seconds (sorted ascending).
        interval: nominal seconds between samples; with the default
            ring capacity the buffer retains the longest window at this
            resolution.  Sampling faster than *interval* is fine — the
            ring just covers a shorter span.
        capacity: ring-buffer slots (default: enough samples to span
            ``max(windows)`` at *interval*, plus headroom).
    """

    windows: tuple[float, ...] = DEFAULT_WINDOWS
    interval: float = 1.0
    capacity: int = 0

    def __post_init__(self):
        if not self.windows or any(w <= 0 for w in self.windows):
            raise ValueError("windows must be positive")
        if tuple(sorted(self.windows)) != tuple(self.windows):
            raise ValueError("windows must be sorted ascending")
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.capacity == 0:
            object.__setattr__(
                self,
                "capacity",
                int(max(self.windows) / self.interval) + 8,
            )
        if self.capacity < 2:
            raise ValueError("capacity must be >= 2")


@dataclass(frozen=True)
class _Sample:
    """One immutable snapshot of the registry's cumulative state."""

    t: float
    #: (metric, label_key) -> float, counters and gauges together.
    scalars: dict
    #: (metric, label_key) -> {"buckets": {...}, "sum": s, "count": n}.
    histograms: dict


@dataclass
class WindowSummary:
    """One series over one window, every derived quantity at once."""

    window_s: float
    span_s: float
    delta: float = 0.0
    rate: float = 0.0
    quantiles: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "window_s": self.window_s,
            "span_s": round(self.span_s, 3),
            "delta": self.delta,
            "rate": self.rate,
        }
        if self.quantiles:
            out["quantiles"] = dict(self.quantiles)
        return out


class WindowedAggregator:
    """Ring-buffered windowed reads over one ``MetricsRegistry``.

    Args:
        registry: the registry to sample (any
            :class:`~repro.obs.metrics.MetricsRegistry`).
        config: window/interval/capacity shape.
        clock: monotonic second source (overridable for tests).
    """

    def __init__(self, registry, config: WindowConfig | None = None, clock=time.monotonic):
        self.registry = registry
        self.config = config if config is not None else WindowConfig()
        self.clock = clock
        self._samples: deque[_Sample] = deque(maxlen=self.config.capacity)
        self._sampled = 0

    # ------------------------------------------------------------------
    # Write side (single sampler)
    # ------------------------------------------------------------------
    def sample(self, now: float | None = None) -> _Sample:
        """Snapshot the registry's cumulative state into the ring.

        Called by exactly one thread (the ops sampler); each metric is
        copied under its own lock, so a snapshot is internally
        consistent per series even while writers are hammering.
        """
        t = self.clock() if now is None else now
        scalars: dict = {}
        histograms: dict = {}
        for name in self.registry.names():
            metric = self.registry.get(name)
            if metric is None:  # reset() raced the name listing
                continue
            if isinstance(metric, Histogram):
                for key, snap in metric.snapshot_all().items():
                    histograms[(name, key)] = snap
            elif isinstance(metric, (Counter, Gauge)):
                for key, value in metric.series().items():
                    scalars[(name, key)] = value
        sample = _Sample(t=t, scalars=scalars, histograms=histograms)
        self._samples.append(sample)
        self._sampled += 1
        return sample

    @property
    def samples_taken(self) -> int:
        """Lifetime sample count (ring overwrites included)."""
        return self._sampled

    # ------------------------------------------------------------------
    # Read side (any thread)
    # ------------------------------------------------------------------
    def _bracket(self, window_s: float) -> tuple[_Sample, _Sample] | None:
        """(then, now) samples spanning the last *window_s* seconds.

        *then* is the newest sample at or before ``now - window_s``
        (falling back to the oldest retained sample when the ring does
        not reach back that far); returns None with fewer than two
        samples.
        """
        samples = list(self._samples)
        if len(samples) < 2:
            return None
        newest = samples[-1]
        cutoff = newest.t - window_s
        times = [s.t for s in samples]
        index = bisect.bisect_right(times, cutoff) - 1
        return samples[max(0, index)], newest

    @staticmethod
    def _series_sum(table: dict, name: str, labels: dict | None) -> float:
        """Sum one metric's series, optionally filtered by label subset."""
        total = 0.0
        want = tuple(sorted((k, str(v)) for k, v in labels.items())) if labels else ()
        for (metric, key), value in table.items():
            if metric != name:
                continue
            if want and not set(want) <= set(key):
                continue
            total += value
        return total

    def delta(self, name: str, window_s: float, labels: dict | None = None) -> float:
        """Increase of a cumulative series over the last *window_s* s.

        *labels* filters series by a label subset (``{"outcome":
        "missed"}`` matches every series carrying that pair); omitted,
        the metric's series are summed.  Clamped at 0 so a counter
        ``reset()`` reads as "no traffic", not negative traffic.
        """
        bracket = self._bracket(window_s)
        if bracket is None:
            return 0.0
        then, now = bracket
        return max(
            0.0,
            self._series_sum(now.scalars, name, labels)
            - self._series_sum(then.scalars, name, labels),
        )

    def rate(self, name: str, window_s: float, labels: dict | None = None) -> float:
        """Per-second increase of a cumulative series over the window."""
        bracket = self._bracket(window_s)
        if bracket is None:
            return 0.0
        then, now = bracket
        span = now.t - then.t
        if span <= 0:
            return 0.0
        return (
            max(
                0.0,
                self._series_sum(now.scalars, name, labels)
                - self._series_sum(then.scalars, name, labels),
            )
            / span
        )

    def value(self, name: str, labels: dict | None = None) -> float:
        """Latest sampled value of a gauge/counter series (summed)."""
        samples = list(self._samples)
        if not samples:
            return 0.0
        return self._series_sum(samples[-1].scalars, name, labels)

    def ratio(
        self,
        bad_name: str,
        total_name: str,
        window_s: float,
        bad_labels: dict | None = None,
        total_labels: dict | None = None,
    ) -> float:
        """Windowed error ratio: delta(bad) / delta(total) (0 when idle)."""
        total = self.delta(total_name, window_s, total_labels)
        if total <= 0:
            return 0.0
        return min(1.0, self.delta(bad_name, window_s, bad_labels) / total)

    def _histogram_window(
        self, name: str, window_s: float, labels: dict | None
    ) -> dict | None:
        """Bucket/sum/count deltas of one histogram over the window."""
        bracket = self._bracket(window_s)
        if bracket is None:
            return None
        then, now = bracket
        want = tuple(sorted((k, str(v)) for k, v in labels.items())) if labels else ()
        buckets: dict = {}
        total_sum = 0.0
        total_count = 0
        matched = False
        for (metric, key), snap in now.histograms.items():
            if metric != name:
                continue
            if want and not set(want) <= set(key):
                continue
            matched = True
            base = then.histograms.get((metric, key))
            for bound, cumulative in snap["buckets"].items():
                before = base["buckets"].get(bound, 0) if base else 0
                buckets[bound] = buckets.get(bound, 0) + max(0, cumulative - before)
            total_sum += snap["sum"] - (base["sum"] if base else 0.0)
            total_count += snap["count"] - (base["count"] if base else 0)
        if not matched:
            return None
        return {"buckets": buckets, "sum": total_sum, "count": max(0, total_count)}

    def quantile(
        self, name: str, q: float, window_s: float, labels: dict | None = None
    ) -> float:
        """Windowed quantile of a histogram (bucket-delta estimate).

        The window's bucket deltas form a cumulative-bucket snapshot of
        exactly the observations made inside the window, estimated with
        the same linear interpolation as
        :meth:`Histogram.estimate_quantile`.
        """
        snap = self._histogram_window(name, window_s, labels)
        if snap is None:
            return 0.0
        return estimate_quantile(snap, q)

    def count(self, name: str, window_s: float, labels: dict | None = None) -> int:
        """Histogram observations made inside the window."""
        snap = self._histogram_window(name, window_s, labels)
        return 0 if snap is None else snap["count"]

    # ------------------------------------------------------------------
    def summary(
        self,
        name: str,
        labels: dict | None = None,
        quantiles: tuple[float, ...] = (0.5, 0.99),
    ) -> dict[float, WindowSummary]:
        """Every configured window's view of one series at once."""
        out: dict[float, WindowSummary] = {}
        for window in self.config.windows:
            bracket = self._bracket(window)
            span = bracket[1].t - bracket[0].t if bracket else 0.0
            entry = WindowSummary(window_s=window, span_s=span)
            hist = self._histogram_window(name, window, labels)
            if hist is not None:
                entry.delta = float(hist["count"])
                entry.rate = hist["count"] / span if span > 0 else 0.0
                entry.quantiles = {
                    q: estimate_quantile(hist, q) for q in quantiles
                }
            else:
                entry.delta = self.delta(name, window, labels)
                entry.rate = self.rate(name, window, labels)
            out[window] = entry
        return out


class SamplerThread:
    """Daemon thread driving one aggregator (and optional callbacks).

    Args:
        aggregator: the :class:`WindowedAggregator` to feed.
        interval: seconds between samples (default: the aggregator's
            configured interval).
        on_sample: extra callables invoked after each sample (the SLO
            monitor's ``evaluate`` rides here).
    """

    def __init__(self, aggregator: WindowedAggregator, interval: float | None = None,
                 on_sample=()):
        self.aggregator = aggregator
        self.interval = (
            interval if interval is not None else aggregator.config.interval
        )
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        self.on_sample = tuple(on_sample)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "SamplerThread":
        """Start sampling; idempotent."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="obs-sampler", daemon=True
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.tick()
            self._stop.wait(self.interval)

    def tick(self) -> None:
        """One sample + callback pass (what the loop runs every interval)."""
        self.aggregator.sample()
        for callback in self.on_sample:
            callback()

    def close(self) -> None:
        """Stop the thread (after at most one more interval)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "SamplerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
