"""Exporter smoke check: trace real runs, validate every exporter.

``python -m repro.obs.smoke --out obs-artifacts`` runs two traced
workloads —

1. a multi-tenant interleaved recurring simulation (two tenants sharing
   one planning service), and
2. a small engine-backed runtime execution (real supersteps),

— then validates the observability pipeline end to end:

* every JSONL line round-trips through :func:`~repro.obs.export.validate_record`,
* the Prometheus exposition parses with the bundled
  :func:`~repro.obs.export.parse_prometheus` validator,
* the Chrome ``trace_event`` document is structurally sound
  (Perfetto-loadable),
* every ``superstep`` and ``plan`` span carries a run's correlation
  (trace) ID — the cross-layer attribution contract.

The validated artifacts (``trace.jsonl``, ``metrics.prom``,
``trace.json``) land in ``--out``; CI runs this module and uploads the
Chrome trace.  Exit code 0 = all checks passed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import export
from repro.obs.observer import TracingObserver
from repro.obs.state import tracing


def run_traced_workloads() -> tuple:
    """Execute both smoke workloads under a fresh tracer/registry.

    Returns:
        ``(records, prometheus_text)``.
    """
    from repro.core.job import PAGERANK_PROFILE, SSSP_PROFILE
    from repro.core.recurring import InterleavedRecurringDriver, RecurringJobSpec
    from repro.core.simulator import ExecutionSimulator
    from repro.engine.algorithms import PageRank
    from repro.experiments.common import ExperimentSetup
    from repro.graph import generators
    from repro.runtime.runtime import HourglassRuntime
    from repro.service.planning import PlanningService
    from repro.utils.units import HOURS

    setup = ExperimentSetup(seed=42, trace_days=10)
    # Workload 1: two tenants interleaved over one planning service.
    service = PlanningService(setup.market)
    specs = []
    for name, profile, period, offset in (
        ("ranks", PAGERANK_PROFILE, 6 * HOURS, 0.0),
        ("paths", SSSP_PROFILE, 4 * HOURS, 1 * HOURS),
    ):
        perf = setup.perf_model(profile)
        specs.append(
            RecurringJobSpec(
                name=name,
                simulator=ExecutionSimulator(
                    setup.market,
                    perf,
                    setup.catalog,
                    "hourglass",
                    record_events=False,
                    service=service,
                    observers=(
                        TracingObserver(
                            job_id=name, tenant=name, strategy="hourglass"
                        ),
                    ),
                ),
                profile=profile,
                period=period,
                offset=offset,
            )
        )

    # Workload 2: a real engine run — superstep/datastore/checkpoint
    # records under the same tracer.  Built *before* tracing is enabled
    # so the calibration run stays untraced; the per-deployment engines
    # are constructed during execute(), inside the tracing scope.
    graph = generators.community_graph(400, num_communities=8, avg_degree=8, seed=7)
    runtime = HourglassRuntime(
        graph,
        lambda: PageRank(iterations=8),
        setup.market,
        setup.catalog,
        service.provisioner("hourglass"),
        num_micro_parts=16,
        seed=2,
        time_scale=3000.0,
        data_scale=20_000,
    )
    runtime.observers = (
        TracingObserver(job_id="engine-run", tenant="engine", strategy="hourglass"),
    )
    budget = runtime.perf.fixed_time(runtime.lrc) + runtime.perf.exec_time(runtime.lrc)

    with tracing() as (tracer, metrics):
        InterleavedRecurringDriver(specs).run(0.0, 2)
        runtime.execute(0.0, 2.0 * budget)
        records = tracer.records()
        prometheus = metrics.to_prometheus()
    return records, prometheus


def run_checks(records, prometheus: str) -> list[tuple[str, str]]:
    """Validate the exporters; returns a list of failures (empty = ok)."""
    failures: list[tuple[str, str]] = []

    # JSONL: every line must satisfy the event schema.
    try:
        lines = [ln for ln in export.to_jsonl(records).splitlines() if ln.strip()]
        for line in lines:
            export.validate_record(json.loads(line))
        if len(lines) != len(records):
            failures.append(("jsonl", f"{len(lines)} lines for {len(records)} records"))
    except ValueError as exc:
        failures.append(("jsonl", str(exc)))

    # Prometheus: the registry's own output must parse cleanly.
    try:
        samples = export.parse_prometheus(prometheus)
        if not samples:
            failures.append(("prometheus", "no samples rendered"))
    except ValueError as exc:
        failures.append(("prometheus", str(exc)))

    # Chrome trace: structural checks on the trace_event document.
    doc = json.loads(json.dumps(export.to_chrome_trace(records), default=lambda v: v.item()))
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        failures.append(("chrome", "no traceEvents"))
    else:
        for ev in events:
            if ev.get("ph") not in ("X", "i", "M"):
                failures.append(("chrome", f"unexpected phase {ev.get('ph')!r}"))
                break
            if ev["ph"] == "X" and (ev.get("dur", -1.0) < 0 or "ts" not in ev):
                failures.append(("chrome", f"malformed complete event {ev['name']!r}"))
                break

    # Correlation: every superstep/plan span must inherit a run's trace
    # id — that is what makes a superstep attributable to its plan
    # requests.
    run_traces = {r.trace_id for r in records if r.name == "run"}
    supersteps = [r for r in records if r.name == "superstep"]
    plans = [r for r in records if r.name == "plan"]
    if not supersteps:
        failures.append(("correlation", "no superstep spans recorded"))
    if not plans:
        failures.append(("correlation", "no plan spans recorded"))
    orphans = [r for r in supersteps + plans if r.trace_id not in run_traces]
    if orphans:
        failures.append(
            ("correlation", f"{len(orphans)} spans outside any run trace")
        )
    return failures


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke", description=__doc__
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("obs-artifacts"),
        help="directory for the validated artifacts",
    )
    args = parser.parse_args(argv)

    records, prometheus = run_traced_workloads()
    failures = run_checks(records, prometheus)

    args.out.mkdir(parents=True, exist_ok=True)
    export.write_jsonl(records, args.out / "trace.jsonl")
    (args.out / "metrics.prom").write_text(prometheus)
    export.write_chrome_trace(records, args.out / "trace.json")
    # Round-trip the archive format as the final check.
    reloaded = export.read_jsonl(args.out / "trace.jsonl")
    if len(reloaded) != len(records):
        failures.append(("jsonl", "round-trip changed the record count"))

    print(f"obs smoke: {len(records)} records, artifacts in {args.out}/")
    for name, detail in failures:
        print(f"FAIL [{name}] {detail}")
    if not failures:
        print("all exporter checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
