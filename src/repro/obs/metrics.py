"""Named counters, gauges and bucketed histograms with labeled series.

A :class:`MetricsRegistry` owns every metric by name; each metric holds
one series per label set (``counter.inc(1, tenant="a", config="spot4")``
and ``tenant="b"`` are independent series).  The renderer speaks the
Prometheus text exposition format, so the output scrapes directly and
round-trips through :func:`repro.obs.export.parse_prometheus`.

Metrics are cheap but not free; hot paths gate their updates behind the
same ``tracer.enabled`` branch that guards span emission, so a run with
observability off touches none of this module.
"""

from __future__ import annotations

import bisect
import math
import threading

#: Default histogram buckets (seconds-oriented: µs planning decisions
#: up to multi-hour simulated phases), plus the implicit +Inf bucket.
DEFAULT_BUCKETS = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0, 3600.0, 21600.0,
)

_LABEL_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v.translate(_LABEL_ESCAPES)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def estimate_quantile(snapshot: dict, q: float) -> float:
    """Quantile *q* (in [0, 1]) from a cumulative-bucket snapshot.

    *snapshot* is the :meth:`Histogram.snapshot` shape:
    ``{"buckets": {le_bound: cumulative_count}, "sum": s, "count": n}``.
    The target rank is located in the cumulative counts and linearly
    interpolated inside the winning bucket (lower edge 0.0 for the first
    bucket — observations are assumed non-negative, as with Prometheus's
    ``histogram_quantile``).  Ranks landing in the implicit ``+Inf``
    bucket clamp to the highest finite bound; an empty series returns
    0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    count = snapshot["count"]
    if count <= 0:
        return 0.0
    bounds = sorted(snapshot["buckets"])
    counts = [snapshot["buckets"][b] for b in bounds]
    rank = q * count
    previous_bound = 0.0
    previous_count = 0
    for bound, cumulative in zip(bounds, counts):
        if cumulative >= rank:
            in_bucket = cumulative - previous_count
            if in_bucket <= 0:
                return bound
            frac = (rank - previous_count) / in_bucket
            return previous_bound + frac * (bound - previous_bound)
        previous_bound = bound
        previous_count = cumulative
    return bounds[-1] if bounds else 0.0


class Metric:
    """Shared series bookkeeping for one named metric."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: dict = {}

    def series(self) -> dict:
        """Label-key -> value snapshot (value shape is per metric type)."""
        with self._lock:
            return dict(self._series)

    def clear(self) -> None:
        """Drop every series."""
        with self._lock:
            self._series.clear()


class Counter(Metric):
    """Monotonically increasing sum per label set."""

    type_name = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        """Add *value* (must be >= 0) to the labeled series."""
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current total of the labeled series (0.0 when unseen)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            return [
                f"{self.name}{_render_labels(key)} {_format_value(v)}"
                for key, v in sorted(self._series.items())
            ]


class Gauge(Metric):
    """Last-written value per label set."""

    type_name = "gauge"

    def set(self, value: float, **labels) -> None:
        """Overwrite the labeled series with *value*."""
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        """Adjust the labeled series by *value* (may be negative)."""
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current value of the labeled series (0.0 when unseen)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            return [
                f"{self.name}{_render_labels(key)} {_format_value(v)}"
                for key, v in sorted(self._series.items())
            ]


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int):
        self.counts = [0] * num_buckets  # cumulative per le-bound
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Bucketed distribution per label set (Prometheus semantics).

    Bucket counts are cumulative: the count for bound ``le`` includes
    every observation <= le, and the implicit ``+Inf`` bucket equals the
    total observation count.
    """

    type_name = "histogram"

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]
        self.bounds = bounds

    def observe(self, value: float, **labels) -> None:
        """Record one observation in the labeled series."""
        key = _label_key(labels)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds))
            for i in range(index, len(self.bounds)):
                series.counts[i] += 1
            series.sum += value
            series.count += 1

    def snapshot(self, **labels) -> dict:
        """``{"buckets": {le: n}, "sum": s, "count": n}`` for one series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return {"buckets": {b: 0 for b in self.bounds}, "sum": 0.0, "count": 0}
            return {
                "buckets": dict(zip(self.bounds, series.counts)),
                "sum": series.sum,
                "count": series.count,
            }

    def snapshot_all(self) -> dict:
        """Label-key -> :meth:`snapshot`-shaped dict, every series at once.

        One lock pass copies every series consistently (bucket counts
        are mutable lists; copying them outside the lock could observe a
        half-applied observation) — the bulk read the windowed
        aggregator samples from.
        """
        with self._lock:
            return {
                key: {
                    "buckets": dict(zip(self.bounds, series.counts)),
                    "sum": series.sum,
                    "count": series.count,
                }
                for key, series in self._series.items()
            }

    def estimate_quantile(self, q: float, **labels) -> float:
        """Quantile *q* of the labeled series (see :func:`estimate_quantile`)."""
        return estimate_quantile(self.snapshot(**labels), q)

    def render(self) -> list[str]:
        lines = []
        with self._lock:
            for key, series in sorted(self._series.items()):
                for bound, count in zip(self.bounds, series.counts):
                    le = _render_labels(key, f'le="{_format_value(bound)}"')
                    lines.append(f"{self.name}_bucket{le} {count}")
                inf = _render_labels(key, 'le="+Inf"')
                lines.append(f"{self.name}_bucket{inf} {series.count}")
                lines.append(
                    f"{self.name}_sum{_render_labels(key)} "
                    f"{_format_value(series.sum)}"
                )
                lines.append(f"{self.name}_count{_render_labels(key)} {series.count}")
        return lines


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Re-requesting a name returns the existing metric; requesting it as a
    different type raises, so two layers cannot silently split a series.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{metric.type_name}, not {cls.type_name}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> Histogram:
        """Get or create the named histogram."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def names(self) -> tuple[str, ...]:
        """Registered metric names, sorted."""
        with self._lock:
            return tuple(sorted(self._metrics))

    def get(self, name: str) -> Metric | None:
        """The named metric, or None."""
        with self._lock:
            return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every metric (names and series)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Render every metric in the Prometheus text exposition format."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        escapes = str.maketrans({"\\": r"\\", "\n": r"\n"})
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} {metric.help.translate(escapes)}"
                )
            lines.append(f"# TYPE {metric.name} {metric.type_name}")
            if isinstance(metric, Histogram):
                # The _sum/_count series are cumulative like counters;
                # typing them explicitly keeps scrapers that treat each
                # sample family independently in agreement with
                # parse_prometheus.
                lines.append(f"# TYPE {metric.name}_sum counter")
                lines.append(f"# TYPE {metric.name}_count counter")
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> dict:
        """Nested plain-dict snapshot (for reports and tests)."""
        out: dict = {}
        with self._lock:
            metrics = dict(self._metrics)
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = {
                    _render_labels(key) or "{}": {
                        "sum": series.sum,
                        "count": series.count,
                    }
                    for key, series in metric.series().items()
                }
            else:
                out[name] = {
                    _render_labels(key) or "{}": value
                    for key, value in metric.series().items()
                }
        return out
