"""Typed timeline entries shared by metrics observers and exporters.

:class:`TimelineEvent` replaces the bare ``(t, kind, config)`` tuples
the :class:`~repro.exec.observers.MetricsObserver` used to collect.  It
keeps full tuple back-compat (indexing, iteration, length) so existing
consumers — and checkpointed reports — keep working, while giving the
trace exporters a typed record to convert.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimelineEvent:
    """One lifecycle timeline entry.

    Attributes:
        t: simulated time of the event.
        kind: what happened (``deploy``, ``checkpoint``, ``eviction``,
            ``checkpoint-failed``, ``forced-lrc``, ``finish``).
        config: configuration name involved, ``"-"`` when none.
    """

    t: float
    kind: str
    config: str = "-"

    def as_tuple(self) -> tuple[float, str, str]:
        """The historical ``(t, kind, config)`` tuple form."""
        return (self.t, self.kind, self.config)

    # Tuple back-compat: old consumers index/unpack timeline entries.
    def __iter__(self):
        return iter(self.as_tuple())

    def __getitem__(self, index):
        return self.as_tuple()[index]

    def __len__(self) -> int:
        return 3
