"""Process-wide observability state: the installed tracer and registry.

Instrumented layers (engine, datastore, planning service, lifecycle
observers) default to the *process* tracer and metrics registry held
here.  Out of the box the tracer is the disabled :data:`NULL_TRACER`,
so every instrumentation site reduces to one ``tracer.enabled`` branch;
:func:`enable` swaps in a live :class:`~repro.obs.trace.Tracer`, and
the :func:`tracing` context manager scopes that to a block::

    with obs.tracing() as (tracer, metrics):
        sim.run(job)
    export.write_jsonl(tracer.records(), "run.jsonl")

Layers that captured the tracer at construction time (the engine does,
for hot-path cheapness) see the tracer installed when they were built —
enable tracing before building what you want traced.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer

_tracer = NULL_TRACER
_metrics = MetricsRegistry()


def get_tracer():
    """The process tracer (:data:`NULL_TRACER` unless enabled)."""
    return _tracer


def get_metrics() -> MetricsRegistry:
    """The process metrics registry (always present; updates are gated
    on the tracer being enabled at the instrumentation sites)."""
    return _metrics


def enable(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
    """Install a live tracer (and optionally a fresh registry).

    Returns:
        ``(tracer, metrics)`` — the now-installed pair.
    """
    global _tracer, _metrics
    _tracer = tracer if tracer is not None else Tracer()
    if metrics is not None:
        _metrics = metrics
    return _tracer, _metrics


def disable():
    """Put the disabled tracer back; the metrics registry is kept."""
    global _tracer
    _tracer = NULL_TRACER
    return _tracer


@contextmanager
def tracing(tracer: Tracer | None = None, metrics: MetricsRegistry | None = None):
    """Enable tracing for a block; restores the previous state after.

    Yields ``(tracer, metrics)``; with no arguments a fresh tracer and a
    fresh registry are installed, so the block's records and series are
    exactly the block's.
    """
    global _tracer, _metrics
    previous = (_tracer, _metrics)
    installed = enable(
        tracer if tracer is not None else Tracer(),
        metrics if metrics is not None else MetricsRegistry(),
    )
    try:
        yield installed
    finally:
        _tracer, _metrics = previous
