"""Hierarchical tracing: spans, instant events, correlation IDs.

One :class:`Tracer` serves the whole process.  A *span* is a named
interval with attributes (``tracer.span("superstep", superstep=3)``);
spans nest through a context variable, so a span opened anywhere on the
same logical thread of control becomes a child of the innermost open
span — that is how a planning-service decision made inside a lifecycle
run, or an engine superstep executed by a work model's segment, ends up
carrying the run's *trace id* (the correlation ID that ties a plan
request to every superstep it caused).  An *event* is an instant
(zero-duration) record with the same parentage rules.

Timestamps are plain floats in seconds on whatever clock the caller
uses.  Lifecycle-level instrumentation passes *simulated* time
explicitly; callers that pass nothing get the tracer's wall clock
(``time.perf_counter``) and their records carry ``clock="wall"`` so
exporters can keep the two timelines apart.

Overhead discipline: every instrumentation site guards on
``tracer.enabled`` (a plain attribute — one branch per event).  The
module-level :data:`NULL_TRACER` is the disabled singleton; with it
installed the instrumented hot paths are bit- and speed-identical to
uninstrumented code.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

#: Attribute key marking which clock a record's timestamps are on.
CLOCK_ATTR = "clock"
CLOCK_SIM = "sim"
CLOCK_WALL = "wall"


@dataclass(frozen=True)
class SpanRecord:
    """One finished span or instant event.

    Attributes:
        kind: ``"span"`` (interval) or ``"event"`` (instant, t1 == t0).
        name: what happened (``run``, ``plan``, ``superstep``, ...).
        trace_id: correlation ID shared by everything under one root
            span — the unit of cross-layer attribution.
        span_id: unique (per tracer) ID of this record.
        parent_id: enclosing span's ``span_id``, or None for roots.
        t0 / t1: start / end time in seconds (caller's clock).
        attrs: attribute mapping, sorted key order, scalar values.
    """

    kind: str
    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    t0: float
    t1: float
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 for events)."""
        return self.t1 - self.t0

    def attr(self, key: str, default=None):
        """Look up one attribute value."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict:
        """The JSONL event-schema view of this record."""
        return {
            "kind": self.kind,
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": dict(self.attrs),
        }


def _freeze_attrs(attrs: dict) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(attrs.items()))


class Span:
    """One open span; close it by leaving the ``with`` block or ``end()``.

    Spans activate themselves on the tracer's context variable while
    open (children attach automatically) and append their
    :class:`SpanRecord` to the tracer when closed.  ``set()`` adds
    attributes any time before the close.
    """

    __slots__ = (
        "_tracer", "name", "trace_id", "span_id", "parent_id",
        "t0", "_attrs", "_token", "_closed",
    )

    def __init__(self, tracer: Tracer, name: str, trace_id: int,
                 span_id: int, parent_id: int | None, t0: float, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = t0
        self._attrs = attrs
        self._token = None
        self._closed = False

    def set(self, **attrs) -> Span:
        """Attach attributes to the (still open) span."""
        self._attrs.update(attrs)
        return self

    def activate(self) -> Span:
        """Make this span the current parent for new spans/events."""
        if self._token is None:
            self._token = self._tracer._current.set(self)
        return self

    def end(self, t: float | None = None) -> SpanRecord | None:
        """Close the span at *t* (tracer clock when omitted)."""
        if self._closed:
            return None
        self._closed = True
        if self._token is not None:
            self._tracer._current.reset(self._token)
            self._token = None
        t1 = self._tracer.clock() if t is None else t
        record = SpanRecord(
            kind="span",
            name=self.name,
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            t0=self.t0,
            t1=t1,
            attrs=_freeze_attrs(self._attrs),
        )
        self._tracer._append(record)
        return record

    def __enter__(self) -> Span:
        return self.activate()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class Tracer:
    """Process-wide span/event collector with deterministic IDs.

    Args:
        clock: default timestamp source for callers that pass no
            explicit time (wall clock by default); records stamped by
            the clock carry ``clock="wall"``.

    Thread safety: record appends and ID allocation are lock-protected;
    the current-span context is a :class:`contextvars.ContextVar`, so
    concurrent threads (e.g. a planning-service thread pool) nest spans
    independently.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._next_span = 1
        self._next_trace = 1
        self._current: ContextVar[Span | None] = ContextVar(
            "repro_obs_current_span", default=None
        )

    # ------------------------------------------------------------------
    def _ids(self, parent: Span | None) -> tuple[int, int, int | None]:
        """(trace_id, span_id, parent_id) for a new span/event."""
        with self._lock:
            span_id = self._next_span
            self._next_span += 1
            if parent is not None:
                return parent.trace_id, span_id, parent.span_id
            trace_id = self._next_trace
            self._next_trace += 1
            return trace_id, span_id, None

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------
    def current_span(self) -> Span | None:
        """The innermost open span on this logical thread, if any."""
        return self._current.get()

    def span(self, name: str, t: float | None = None, **attrs) -> Span:
        """Open a span starting at *t* (tracer clock when omitted)."""
        if t is None:
            t = self.clock()
            attrs.setdefault(CLOCK_ATTR, CLOCK_WALL)
        parent = self._current.get()
        trace_id, span_id, parent_id = self._ids(parent)
        return Span(self, name, trace_id, span_id, parent_id, t, attrs)

    def event(self, name: str, t: float | None = None, **attrs) -> SpanRecord:
        """Record an instant event at *t* (tracer clock when omitted)."""
        if t is None:
            t = self.clock()
            attrs.setdefault(CLOCK_ATTR, CLOCK_WALL)
        parent = self._current.get()
        trace_id, span_id, parent_id = self._ids(parent)
        record = SpanRecord(
            kind="event",
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            t0=t,
            t1=t,
            attrs=_freeze_attrs(attrs),
        )
        self._append(record)
        return record

    def record_span(
        self, name: str, t0: float, t1: float, **attrs
    ) -> SpanRecord:
        """Record an already-finished span (explicit start and end)."""
        parent = self._current.get()
        trace_id, span_id, parent_id = self._ids(parent)
        record = SpanRecord(
            kind="span",
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            t0=t0,
            t1=t1,
            attrs=_freeze_attrs(attrs),
        )
        self._append(record)
        return record

    # ------------------------------------------------------------------
    def records(self) -> tuple[SpanRecord, ...]:
        """Everything recorded so far, in completion order."""
        with self._lock:
            return tuple(self._records)

    def clear(self) -> None:
        """Drop all collected records (IDs keep counting up)."""
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class _NullSpan:
    """Inert span handed out by the disabled tracer."""

    __slots__ = ()

    def set(self, **attrs) -> _NullSpan:
        return self

    def activate(self) -> _NullSpan:
        return self

    def end(self, t: float | None = None) -> None:
        return None

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Instrumentation sites must still guard with ``if tracer.enabled:``
    — the guard, not this class, is what keeps hot paths at one branch
    per event.
    """

    enabled = False
    _NULL_SPAN = _NullSpan()

    def current_span(self) -> None:
        return None

    def span(self, name: str, t: float | None = None, **attrs) -> _NullSpan:
        return self._NULL_SPAN

    def event(self, name: str, t: float | None = None, **attrs) -> None:
        return None

    def record_span(self, name, t0, t1, **attrs) -> None:
        return None

    def records(self) -> tuple:
        return ()

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: The process-default disabled tracer (shared singleton).
NULL_TRACER = NullTracer()


@contextmanager
def child_context(tracer, span):
    """Run a block with *span* as the current parent (for callbacks)."""
    if span is None or not tracer.enabled:
        yield
        return
    token = tracer._current.set(span)
    try:
        yield
    finally:
        tracer._current.reset(token)
