"""repro — a reproduction of Hourglass (EuroSys 2019).

Hourglass provisions transient (spot) cloud resources for
time-constrained graph processing jobs, combining a slack-aware
expected-cost provisioning strategy with a micro-partitioning fast
reload mechanism.  This package reimplements the system and every
substrate it depends on:

* :mod:`repro.graph` — CSR graph structures, generators, dataset registry;
* :mod:`repro.partitioning` — hash / FENNEL / METIS-like multilevel
  partitioners and the micro-partitioner with online clustering;
* :mod:`repro.engine` — a Pregel-style BSP engine with checkpointing,
  a simulated datastore, three loading strategies, and the paper's
  graph applications (PageRank, SSSP, Graph Coloring, and more);
* :mod:`repro.cloud` — instance catalogue, synthetic spot-price traces,
  eviction models and a replayable market simulator;
* :mod:`repro.core` — the Hourglass provisioner, expected-cost
  machinery, baselines, and the trace-driven execution simulator;
* :mod:`repro.service` — the multi-tenant planning service: shared
  estimator caches, market snapshots, and batched decisions;
* :mod:`repro.experiments` — regenerators for every evaluation figure.

Quickstart::

    from repro import (
        ExperimentSetup, HourglassProvisioner, ExecutionSimulator,
        PAGERANK_PROFILE, job_with_slack,
    )
    setup = ExperimentSetup(seed=7)
    perf = setup.perf_model(PAGERANK_PROFILE)
    sim = ExecutionSimulator(setup.market, perf, setup.catalog,
                             HourglassProvisioner())
    job = job_with_slack(PAGERANK_PROFILE, 0.0, 0.5,
                         perf.fixed_time(setup.lrc(perf)))
    result = sim.run(job)
    print(result.cost, result.missed_deadline)
"""

from repro.cloud import (
    Configuration,
    Market,
    PriceTrace,
    SpotMarket,
    default_catalog,
    full_grid_catalog,
)
from repro.core import (
    COLORING_PROFILE,
    PAGERANK_PROFILE,
    SSSP_PROFILE,
    ApplicationProfile,
    DeadlineProtected,
    ExecutionSimulator,
    HourglassNaiveProvisioner,
    HourglassProvisioner,
    JobSpec,
    OnDemandProvisioner,
    PerformanceModel,
    ProteusProvisioner,
    RecurringJobDriver,
    SimulationResult,
    SlackModel,
    SpotOnProvisioner,
    job_with_slack,
    on_demand_baseline_cost,
)
from repro.engine import DataStore, PregelEngine
from repro.exec import (
    DatastoreWriteFaults,
    EvictionStormFaults,
    ExecutionError,
    ExecutionLifecycle,
    LifecycleEvent,
    LifecycleObserver,
    MetricsObserver,
    RunResult,
    SlowBootFaults,
)
from repro.experiments import ExperimentSetup
from repro import obs
from repro.obs import TracingObserver, tracing
from repro.runtime import HourglassRuntime, RuntimeResult
from repro.service import (
    PlanError,
    PlanningService,
    PlanRequest,
    PlanResult,
    ServicePlannedProvisioner,
)
from repro.graph import Graph, GraphBuilder, from_edges, get_dataset
from repro.partitioning import (
    FennelPartitioner,
    HashPartitioner,
    MicroPartitioner,
    MultilevelPartitioner,
    Partitioning,
)

__version__ = "1.0.0"

__all__ = [
    "ApplicationProfile",
    "COLORING_PROFILE",
    "Configuration",
    "DataStore",
    "DatastoreWriteFaults",
    "DeadlineProtected",
    "EvictionStormFaults",
    "ExecutionError",
    "ExecutionLifecycle",
    "ExecutionSimulator",
    "ExperimentSetup",
    "LifecycleEvent",
    "LifecycleObserver",
    "MetricsObserver",
    "RunResult",
    "SlowBootFaults",
    "FennelPartitioner",
    "Graph",
    "GraphBuilder",
    "HourglassRuntime",
    "RuntimeResult",
    "HashPartitioner",
    "HourglassNaiveProvisioner",
    "HourglassProvisioner",
    "JobSpec",
    "Market",
    "MicroPartitioner",
    "MultilevelPartitioner",
    "OnDemandProvisioner",
    "PAGERANK_PROFILE",
    "Partitioning",
    "PerformanceModel",
    "PlanError",
    "PlanningService",
    "PlanRequest",
    "PlanResult",
    "ServicePlannedProvisioner",
    "PregelEngine",
    "PriceTrace",
    "ProteusProvisioner",
    "RecurringJobDriver",
    "SSSP_PROFILE",
    "SimulationResult",
    "SlackModel",
    "SpotMarket",
    "SpotOnProvisioner",
    "TracingObserver",
    "default_catalog",
    "from_edges",
    "full_grid_catalog",
    "get_dataset",
    "job_with_slack",
    "obs",
    "on_demand_baseline_cost",
    "tracing",
    "__version__",
]
