"""Shared utilities: deterministic RNG plumbing, unit helpers, validation."""

from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.units import (
    GiB,
    HOURS,
    MINUTES,
    MiB,
    SECONDS,
    format_duration,
    format_money,
    hours,
    minutes,
)
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)

__all__ = [
    "derive_rng",
    "spawn_rngs",
    "SECONDS",
    "MINUTES",
    "HOURS",
    "MiB",
    "GiB",
    "hours",
    "minutes",
    "format_duration",
    "format_money",
    "check_fraction",
    "check_non_negative",
    "check_positive",
]
