"""Unit conventions used throughout the library.

All simulated *time* is in **seconds** (floats), all *money* in **dollars**
and all *data sizes* in **bytes**.  The constants below exist so call sites
read naturally (``4 * HOURS``) instead of sprinkling magic numbers.
"""

from __future__ import annotations

SECONDS = 1.0
MINUTES = 60.0
HOURS = 3600.0

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * HOURS


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * MINUTES


def format_duration(seconds: float) -> str:
    """Human readable duration, e.g. ``format_duration(5400) == '1h30m'``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTES:
        return f"{seconds:.1f}s"
    if seconds < HOURS:
        whole_minutes, rem = divmod(seconds, MINUTES)
        if rem < 0.5:
            return f"{int(whole_minutes)}m"
        return f"{int(whole_minutes)}m{rem:.0f}s"
    whole_hours, rem = divmod(seconds, HOURS)
    rem_minutes = rem / MINUTES
    if rem_minutes < 0.5:
        return f"{int(whole_hours)}h"
    return f"{int(whole_hours)}h{rem_minutes:.0f}m"


def format_money(dollars: float) -> str:
    """Format a dollar amount with a sensible precision."""
    if abs(dollars) >= 100:
        return f"${dollars:,.0f}"
    return f"${dollars:,.2f}"
