"""Deterministic random-number plumbing.

Every stochastic component in the library (trace generators, graph
generators, the execution simulator) accepts either an integer seed or a
:class:`numpy.random.Generator`.  These helpers normalise that input and
derive statistically independent child streams so that, e.g., two
instance-type price traces built from the same master seed do not share a
stream.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def derive_rng(seed, *keys) -> np.random.Generator:
    """Return a Generator derived from *seed* and an optional key path.

    ``seed`` may be ``None`` (fresh entropy), an ``int``, a
    ``SeedSequence`` or an existing ``Generator`` (returned as-is when no
    keys are given).  String keys are hashed into the seed sequence so the
    same ``(seed, keys)`` pair always yields the same stream.
    """
    if isinstance(seed, np.random.Generator):
        if not keys:
            return seed
        # Derive a child stream deterministically from the parent state.
        child_seed = int(seed.integers(0, 2**63 - 1))
        return derive_rng(child_seed, *keys)
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    if keys:
        key_ints = [_key_to_int(k) for k in keys]
        ss = np.random.SeedSequence(
            entropy=ss.entropy, spawn_key=tuple(ss.spawn_key) + tuple(key_ints)
        )
    return np.random.default_rng(ss)


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Spawn *count* independent generators from a single seed."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]


def _key_to_int(key) -> int:
    """Map a mixed str/int key to a stable non-negative integer."""
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFF
    if isinstance(key, str):
        # FNV-1a over the UTF-8 bytes: stable across processes (unlike hash()).
        acc = 0x811C9DC5
        for byte in key.encode("utf-8"):
            acc ^= byte
            acc = (acc * 0x01000193) & 0xFFFFFFFF
        return acc
    raise TypeError(f"rng key must be str or int, got {type(key).__name__}")
