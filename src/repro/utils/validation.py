"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

import math


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` and finite; return it."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` and finite; return it."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value
