"""CLI for the load harness.

Run a seeded trace through admission + batch planning + execution and
print the report::

    python -m repro.load --jobs 1000 --seed 42
    python -m repro.load --jobs 100 --capacity 16 --queue-limit 32 \\
        --out load-artifacts

``--out DIR`` additionally writes ``report.txt``, the arrival trace as
``trace.jsonl`` (replayable via :meth:`ArrivalTrace.from_jsonl`) and the
``load_*`` metrics in Prometheus text format as ``metrics.prom``.

The process exits non-zero if the run is degenerate (nothing admitted or
nothing planned), which is what the CI smoke job keys off.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.load.harness import HarnessConfig, LoadHarness
from repro.load.trace import LoadTraceConfig, generate_trace
from repro.obs.metrics import MetricsRegistry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.load", description=__doc__)
    parser.add_argument("--jobs", type=int, default=1000, help="arrivals to generate")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--tenants", type=int, default=20)
    parser.add_argument(
        "--arrivals-per-hour", type=float, default=120.0, help="mean offered rate"
    )
    parser.add_argument(
        "--window", type=float, default=60.0, help="planning window seconds"
    )
    parser.add_argument(
        "--capacity", type=int, default=64, help="requests planned per window"
    )
    parser.add_argument(
        "--queue-limit", type=int, default=256, help="admission backlog bound"
    )
    parser.add_argument("--strategy", default="hourglass")
    parser.add_argument("--trace-days", type=int, default=14)
    parser.add_argument(
        "--recurring-tenants", type=int, default=4, help="interleaved recurring phase"
    )
    parser.add_argument("--recurring-periods", type=int, default=6)
    parser.add_argument(
        "--plan-only",
        action="store_true",
        help="skip execution (latency/admission sections only)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="artifact directory (report/trace/metrics)"
    )
    return parser


def main(argv=None) -> int:
    """Run the harness; returns a process exit code."""
    args = build_parser().parse_args(argv)
    trace_config = LoadTraceConfig(
        seed=args.seed,
        num_jobs=args.jobs,
        num_tenants=args.tenants,
        arrivals_per_hour=args.arrivals_per_hour,
    )
    config = HarnessConfig(
        trace=trace_config,
        window_s=args.window,
        capacity_per_window=args.capacity,
        queue_limit=args.queue_limit,
        strategy=args.strategy,
        execute=not args.plan_only,
        trace_days=args.trace_days,
        recurring_tenants=args.recurring_tenants,
        recurring_periods=args.recurring_periods,
    )
    metrics = MetricsRegistry()
    trace = generate_trace(trace_config)
    report = LoadHarness(config, metrics=metrics).run(trace)
    rendered = report.render()
    print(rendered)

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "report.txt").write_text(rendered + "\n")
        trace.to_jsonl(args.out / "trace.jsonl")
        (args.out / "metrics.prom").write_text(metrics.to_prometheus())
        print(f"\n[artifacts written to {args.out}]")

    problems = []
    if report.admitted == 0:
        problems.append("no jobs admitted")
    if report.planned == 0:
        problems.append("no jobs planned")
    if config.execute and report.executed == 0:
        problems.append("no jobs executed")
    if problems:
        print(f"DEGENERATE RUN: {'; '.join(problems)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
