"""CLI for the load harness.

Run a seeded trace through admission + batch planning + execution and
print the report::

    python -m repro.load --jobs 1000 --seed 42
    python -m repro.load --jobs 100 --capacity 16 --queue-limit 32 \\
        --out load-artifacts
    python -m repro.load --jobs 100 --frontend --workers 1:6 \\
        --time-scale 3600 --require-scaling

``--frontend`` plans through the async :class:`PlanFrontend` (request
coalescing, eager batching, an autoscaled planner pool, backpressure)
instead of the windowed admission path; ``--workers MIN:MAX`` bounds the
pool and ``--require-scaling`` makes the run degenerate unless the
autoscaler both powered up and powered down.  In frontend mode the
process also verifies the no-silent-drop invariant: every offered job
must resolve to exactly one outcome.

``--elastic`` executes with per-app frontier-decay curves under the
``elastic`` strategy (planned mid-job rescaling on the active-vertex
frontier); ``--require-rescale`` makes the run degenerate unless at
least one planned shrink landed and no executed run missed its deadline
(the CI elastic-smoke gate).

``--engine-mode parallel`` adds a real-engine exercise to the run: one
Pregel job executed through both the serial and the shared-memory
multiprocess engine, with the bit-identity of their results recorded in
the report (and enforced — divergence makes the run degenerate).  Serial
mode leaves the report fingerprint byte-identical to earlier releases.

``--serve`` turns the run into a live, observable one: the ``load_*``
series are published at event time, a background sampler maintains
10 s / 1 m / 5 m windowed aggregates with burn-rate SLO evaluation, every
executed run is attributed to its tenant in a cost ledger, and a
scrapeable HTTP endpoint (``/metrics``, ``/health``, ``/slo``,
``/tenants``) serves all of it while the harness runs::

    python -m repro.load --jobs 200 --serve --port 9109 &
    curl -s localhost:9109/metrics | head
    curl -s localhost:9109/slo | python -m json.tool

``--watch SECONDS`` prints a live status panel to stderr at that period
(usable with or without ``--serve``).  Either flag appends SLO and
per-tenant attribution sections to the final report — rendered outside
:class:`LoadReport`, so the report fingerprint is bit-identical with
serving on or off.

``--out DIR`` additionally writes ``report.txt``, the arrival trace as
``trace.jsonl`` (replayable via :meth:`ArrivalTrace.from_jsonl`) and the
``load_*`` metrics in Prometheus text format as ``metrics.prom`` (plus
``slo.json`` / ``tenants.json`` when serving).

The process exits non-zero if the run is degenerate (nothing admitted or
nothing planned), which is what the CI smoke job keys off.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.load.harness import HarnessConfig, LoadHarness
from repro.load.trace import LoadTraceConfig, generate_trace
from repro.obs.metrics import MetricsRegistry


def _parse_workers(value: str) -> tuple[int, int]:
    """Parse a ``MIN:MAX`` pool band (a bare integer pins both)."""
    lo, sep, hi = value.partition(":")
    try:
        low = int(lo)
        high = int(hi) if sep else low
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected MIN:MAX worker counts, got {value!r}"
        ) from exc
    if low < 1 or high < low:
        raise argparse.ArgumentTypeError(
            f"need 1 <= MIN <= MAX, got {value!r}"
        )
    return low, high


def _parse_scales(value: str) -> tuple[float, ...]:
    """Parse a comma-separated list of positive scale factors."""
    try:
        scales = tuple(float(v) for v in value.split(","))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated floats, got {value!r}"
        ) from exc
    if not scales or any(s <= 0 for s in scales):
        raise argparse.ArgumentTypeError(f"scales must be positive, got {value!r}")
    return scales


def _parse_slack_range(value: str) -> tuple[float, float]:
    """Parse a ``LO:HI`` slack-fraction range."""
    lo, _, hi = value.partition(":")
    try:
        low, high = float(lo), float(hi)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected LO:HI slack fractions, got {value!r}"
        ) from exc
    if not 0 <= low <= high:
        raise argparse.ArgumentTypeError(f"need 0 <= LO <= HI, got {value!r}")
    return low, high


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.load", description=__doc__)
    parser.add_argument("--jobs", type=int, default=1000, help="arrivals to generate")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--tenants", type=int, default=20)
    parser.add_argument(
        "--arrivals-per-hour", type=float, default=120.0, help="mean offered rate"
    )
    parser.add_argument(
        "--scales",
        type=_parse_scales,
        default=None,
        metavar="S1,S2,...",
        help="graph-size scale factors for the trace (default: the "
        "generator's 0.25,0.5,1.0; large scales give jobs long enough "
        "to checkpoint — and, with --elastic, to rescale)",
    )
    parser.add_argument(
        "--slack-range",
        type=_parse_slack_range,
        default=None,
        metavar="LO:HI",
        help="uniform per-job slack-fraction range (default 0.1:1.0)",
    )
    parser.add_argument(
        "--slack-quantum",
        type=float,
        default=0.0,
        help="round slack fractions to this step (0 = continuous; round "
        "numbers make duplicate requests the frontend can coalesce)",
    )
    parser.add_argument(
        "--window", type=float, default=60.0, help="planning window seconds"
    )
    parser.add_argument(
        "--capacity", type=int, default=64, help="requests planned per window"
    )
    parser.add_argument(
        "--queue-limit", type=int, default=256, help="admission backlog bound"
    )
    parser.add_argument(
        "--strategy",
        default=None,
        help="planning strategy (default: hourglass, or elastic with --elastic)",
    )
    parser.add_argument("--trace-days", type=int, default=14)
    parser.add_argument(
        "--recurring-tenants", type=int, default=4, help="interleaved recurring phase"
    )
    parser.add_argument("--recurring-periods", type=int, default=6)
    parser.add_argument(
        "--plan-only",
        action="store_true",
        help="skip execution (latency/admission sections only)",
    )
    parser.add_argument(
        "--frontend",
        action="store_true",
        help="plan through the async frontend + autoscaled planner pool",
    )
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=(1, 4),
        metavar="MIN:MAX",
        help="planner-pool size band in frontend mode (default 1:4)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=0.0,
        help="simulated seconds per wall second when pacing frontend "
        "submissions (0 = saturation, no pacing)",
    )
    parser.add_argument(
        "--require-scaling",
        action="store_true",
        help="frontend mode: fail unless the pool scaled up AND back down",
    )
    parser.add_argument(
        "--elastic",
        action="store_true",
        help="execute with frontier-decay curves and planned mid-job "
        "rescaling (defaults --strategy to 'elastic')",
    )
    parser.add_argument(
        "--require-rescale",
        action="store_true",
        help="elastic mode: fail unless >= 1 planned shrink landed and "
        "no executed run missed its deadline",
    )
    parser.add_argument(
        "--engine-mode",
        choices=("serial", "parallel"),
        default="serial",
        help="Pregel engine execution mode; 'parallel' also runs a "
        "serial-vs-parallel bit-identity spot check on a real engine job "
        "(the report fingerprint is unchanged in serial mode)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="publish metrics live and expose /metrics /health /slo "
        "/tenants over HTTP while the run is in flight",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="ops endpoint port with --serve (0 = pick a free port)",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="print a live status panel to stderr at this period "
        "(0 disables; implies live metrics like --serve)",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=0.5,
        help="seconds between windowed-aggregation samples in serve/"
        "watch mode",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="artifact directory (report/trace/metrics)"
    )
    return parser


def main(argv=None) -> int:
    """Run the harness; returns a process exit code."""
    args = build_parser().parse_args(argv)
    trace_kwargs = {}
    if args.scales is not None:
        trace_kwargs["scales"] = args.scales
    if args.slack_range is not None:
        trace_kwargs["slack_range"] = args.slack_range
    trace_config = LoadTraceConfig(
        seed=args.seed,
        num_jobs=args.jobs,
        num_tenants=args.tenants,
        arrivals_per_hour=args.arrivals_per_hour,
        slack_quantum=args.slack_quantum,
        **trace_kwargs,
    )
    strategy = args.strategy or ("elastic" if args.elastic else "hourglass")
    config = HarnessConfig(
        trace=trace_config,
        window_s=args.window,
        capacity_per_window=args.capacity,
        queue_limit=args.queue_limit,
        strategy=strategy,
        execute=not args.plan_only,
        trace_days=args.trace_days,
        recurring_tenants=args.recurring_tenants,
        recurring_periods=args.recurring_periods,
        frontend=args.frontend,
        frontend_min_workers=args.workers[0],
        frontend_max_workers=args.workers[1],
        time_scale=args.time_scale,
        elastic=args.elastic,
        engine_mode=args.engine_mode,
    )
    metrics = MetricsRegistry()
    trace = generate_trace(trace_config)

    serving = args.serve or args.watch > 0
    aggregator = monitor = ledger = server = sampler = watcher = None
    if serving:
        if args.sample_interval <= 0:
            print("--sample-interval must be positive", file=sys.stderr)
            return 2
        from repro.load.watch import WatchLoop
        from repro.obs.attribution import CostLedger
        from repro.obs.server import OpsServer
        from repro.obs.slo import SloMonitor, default_slos
        from repro.obs.window import (
            SamplerThread,
            WindowConfig,
            WindowedAggregator,
        )

        aggregator = WindowedAggregator(
            metrics, WindowConfig(interval=args.sample_interval)
        )
        monitor = SloMonitor(aggregator, default_slos(), metrics=metrics)
        ledger = CostLedger(metrics=metrics)
        if args.serve:
            server = OpsServer(
                metrics,
                aggregator=aggregator,
                monitor=monitor,
                ledger=ledger,
                port=args.port,
                sample_interval=args.sample_interval,
            ).start()
            print(
                f"[ops endpoint on {server.url} — /metrics /health /slo /tenants]",
                file=sys.stderr,
            )
        else:
            sampler = SamplerThread(
                aggregator, args.sample_interval, on_sample=(monitor.evaluate,)
            ).start()
        if args.watch > 0:
            watcher = WatchLoop(
                aggregator, monitor, ledger, interval=args.watch
            ).start()

    try:
        report = LoadHarness(
            config, metrics=metrics, ledger=ledger, live_metrics=serving
        ).run(trace)
    finally:
        if watcher is not None:
            watcher.close()
        if server is not None:
            server.close()
        if sampler is not None:
            sampler.close()
    rendered = report.render()
    if serving:
        # One final sample/evaluation so the sections reflect the whole
        # run (the background sampler is stopped by now).
        aggregator.sample()
        monitor.evaluate()
        from repro.load.report import format_slo_section, format_tenant_section

        rendered += "\n\n" + format_slo_section(monitor.as_dict())
        rendered += "\n\n" + format_tenant_section(ledger.as_dict())
    print(rendered)

    if args.out is not None:
        import json

        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "report.txt").write_text(rendered + "\n")
        trace.to_jsonl(args.out / "trace.jsonl")
        (args.out / "metrics.prom").write_text(metrics.to_prometheus())
        if serving:
            (args.out / "slo.json").write_text(
                json.dumps(monitor.as_dict(), indent=1, sort_keys=True) + "\n"
            )
            (args.out / "tenants.json").write_text(
                json.dumps(ledger.as_dict(), indent=1, sort_keys=True) + "\n"
            )
        print(f"\n[artifacts written to {args.out}]")

    problems = []
    if report.admitted == 0:
        problems.append("no jobs admitted")
    if report.planned == 0:
        problems.append("no jobs planned")
    if config.execute and report.executed == 0:
        problems.append("no jobs executed")
    if args.frontend:
        resolved = (
            report.planned
            + report.rejected_overload
            + report.rejected_invalid
            + report.deadline_lost
        )
        if resolved != report.offered:
            problems.append(
                f"lost requests: {report.offered} offered but only "
                f"{resolved} resolved to an outcome"
            )
        if args.require_scaling:
            if report.pool_scale_ups == 0:
                problems.append("autoscaler never scaled up")
            if report.pool_scale_downs == 0:
                problems.append("autoscaler never scaled down")
    if args.engine_mode == "parallel" and not report.engine_parallel_match:
        problems.append("serial and parallel engine results diverged")
    if args.require_rescale:
        if report.rescale_shrinks == 0:
            problems.append("no planned shrink landed")
        if report.missed > 0:
            problems.append(f"{report.missed} executed runs missed their deadline")
    if problems:
        print(f"DEGENERATE RUN: {'; '.join(problems)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
