"""Live terminal status panel for a serving load run (``--watch``).

:func:`render_panel` is a pure function from the live observability
objects (windowed aggregator, SLO monitor, cost ledger) to one text
frame; :class:`WatchLoop` prints a frame every interval from a daemon
thread while the harness runs.  The panel reads the same windowed
aggregates the ``/slo`` endpoint serves — including the histogram
quantiles estimated by
:func:`~repro.obs.metrics.estimate_quantile` — so the numbers on the
terminal and the numbers a scraper sees can never disagree.
"""

from __future__ import annotations

import sys
import threading


def _fmt_rate(value: float) -> str:
    return f"{value:8.2f}/s"


def render_panel(aggregator, monitor=None, ledger=None, window_s: float | None = None) -> str:
    """One status frame from the live aggregates (pure; no printing)."""
    window = window_s if window_s is not None else aggregator.config.windows[0]
    lines = [f"-- load run · last {window:g}s --"]
    lines.append(
        "  planned   " + _fmt_rate(
            aggregator.rate("load_jobs_total", window, {"outcome": "planned"})
        )
        + "   runs " + _fmt_rate(aggregator.rate("load_runs_total", window))
    )
    p50 = aggregator.quantile("load_plan_latency_seconds", 0.5, window)
    p99 = aggregator.quantile("load_plan_latency_seconds", 0.99, window)
    lines.append(
        f"  plan latency p50 {1000 * p50:7.2f} ms   p99 {1000 * p99:7.2f} ms"
    )
    miss = aggregator.ratio(
        "load_runs_total",
        "load_runs_total",
        window,
        bad_labels={"outcome": "missed"},
    )
    spend = aggregator.rate("load_user_cost_dollars_total", window)
    lines.append(f"  miss rate {100 * miss:6.2f}%   spend {spend:8.4f} $/s")
    if monitor is not None:
        firing = monitor.as_dict()["firing"]
        lines.append(
            "  slo: " + (", ".join(firing) if firing else "all objectives within budget")
        )
    if ledger is not None:
        totals = ledger.totals()
        lines.append(
            f"  tenants {len(ledger.snapshot())}   "
            f"billed ${totals.dollars:10.2f}   runs {totals.runs}"
        )
    return "\n".join(lines)


class WatchLoop:
    """Daemon thread printing :func:`render_panel` frames periodically.

    Args:
        aggregator / monitor / ledger: the live objects to render.
        interval: seconds between frames.
        stream: output file object (default ``sys.stderr`` — frames must
            not interleave with the report on stdout).
    """

    def __init__(self, aggregator, monitor=None, ledger=None,
                 interval: float = 2.0, stream=None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.aggregator = aggregator
        self.monitor = monitor
        self.ledger = ledger
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.frames = 0

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            print(
                render_panel(self.aggregator, self.monitor, self.ledger),
                file=self.stream,
                flush=True,
            )
            self.frames += 1

    def start(self) -> "WatchLoop":
        """Start printing; idempotent."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="load-watch", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop after the current frame."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "WatchLoop":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
