"""Bounded-queue admission control in front of the planning service.

The planning service itself plans whatever it is handed; under a
saturating arrival trace that means unbounded batch sizes and unbounded
queueing delay.  :class:`AdmissionController` puts the standard
production guardrail in front: per planning window it services at most
``capacity_per_window`` requests, holds up to ``queue_limit`` more in a
FIFO backlog, and **rejects** (tail-drop) everything beyond that —
raising nothing, so saturation degrades item-by-item instead of failing
whole batches.  Rejections surface as
:class:`~repro.service.planning.PlanError` values via
:meth:`rejection_error`, the same error type service admission uses.

The controller is deliberately ignorant of :class:`PlanRequest`: it
queues opaque *items* (the harness queues :class:`TraceJob`\\ s) and the
caller builds plan requests for the admitted items at dequeue time —
queueing delays a job in *simulated* time, so its plan must be made
with the clock (and the shrunken slack) of the window that actually
services it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.service.planning import PlanError


@dataclass
class AdmissionStats:
    """Counters of one controller's lifetime (one load run)."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    queued: int = 0  # items that waited at least one window
    queue_peak: int = 0
    windows: int = 0

    def as_dict(self) -> dict:
        """Flat dict for reports."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "queued": self.queued,
            "queue_peak": self.queue_peak,
            "windows": self.windows,
        }


@dataclass(frozen=True)
class AdmittedItem:
    """An item released for planning, with its queueing history.

    Attributes:
        item: the opaque item handed to :meth:`AdmissionController.offer`.
        waited_windows: planning windows the item spent in the backlog
            (0 = serviced in its arrival window).
    """

    item: object
    waited_windows: int


@dataclass
class AdmissionController:
    """FIFO bounded-queue admission in front of a batch planner.

    Args:
        capacity_per_window: max items released to the planner per
            window (the service's configured capacity).
        queue_limit: max items held back for later windows; offered
            items beyond capacity + free queue slots are rejected.
    """

    capacity_per_window: int
    queue_limit: int
    stats: AdmissionStats = field(default_factory=AdmissionStats)

    def __post_init__(self):
        if self.capacity_per_window < 1:
            raise ValueError("capacity_per_window must be >= 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self._backlog: deque[tuple[object, int]] = deque()  # (item, window in)

    @property
    def backlog(self) -> int:
        """Items currently waiting for a later window."""
        return len(self._backlog)

    def offer(self, items) -> tuple[list[AdmittedItem], list[object]]:
        """Run one planning window over the backlog plus *items*.

        Returns ``(admitted, rejected)``: up to ``capacity_per_window``
        :class:`AdmittedItem`\\ s released for planning (backlog first,
        FIFO), and the newly offered items that were tail-dropped
        because the queue was full.
        """
        window = self.stats.windows
        self.stats.windows += 1
        items = list(items)
        self.stats.offered += len(items)
        admitted: list[AdmittedItem] = []
        while self._backlog and len(admitted) < self.capacity_per_window:
            item, window_in = self._backlog.popleft()
            admitted.append(AdmittedItem(item=item, waited_windows=window - window_in))
        rejected: list[object] = []
        for item in items:
            if len(admitted) < self.capacity_per_window:
                admitted.append(AdmittedItem(item=item, waited_windows=0))
            elif len(self._backlog) < self.queue_limit:
                self._backlog.append((item, window))
                self.stats.queued += 1
            else:
                rejected.append(item)
        self.stats.admitted += len(admitted)
        self.stats.rejected += len(rejected)
        self.stats.queue_peak = max(self.stats.queue_peak, len(self._backlog))
        return admitted, rejected

    def drain(self) -> list[AdmittedItem]:
        """One backlog-only window (end-of-trace flushing)."""
        admitted, _ = self.offer(())
        return admitted

    @staticmethod
    def rejection_error(item) -> PlanError:
        """The per-slot error recorded for a tail-dropped item."""
        return PlanError(
            f"admission rejected {item!r}: offered load exceeds capacity "
            "(queue full)"
        )
