"""CI smoke for the live-operations layer (``python -m repro.load.ops_smoke``).

Drives a small seeded trace through the harness **in serving mode** and
scrapes the ops endpoint *while the run is in flight*, asserting the
acceptance criteria of the live-operations layer:

1. ``/metrics`` parses with :func:`~repro.obs.export.parse_prometheus`
   both mid-run and after completion;
2. ``/slo`` reports at least one completed evaluation and carries a
   ``deadline_miss_rate`` objective with burn rates for every window;
3. ``/tenants`` dollars sum to the final report's ``user_cost_dollars``
   within 1e-6;
4. a second, non-serving run of the same seed produces a bit-identical
   report fingerprint — serving mode observes, never perturbs.

Artifacts (scraped exposition, SLO/tenant payloads, the report) are
written to ``--out`` for upload.  Exits non-zero on any failed check,
which is what the CI job keys off.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.request
from pathlib import Path

from repro.load.harness import HarnessConfig, LoadHarness
from repro.load.trace import LoadTraceConfig, generate_trace
from repro.obs.attribution import CostLedger
from repro.obs.export import parse_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import OpsServer
from repro.obs.slo import SloMonitor, default_slos
from repro.obs.window import WindowConfig, WindowedAggregator


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode()


def run_smoke(jobs: int = 100, seed: int = 42, out: Path | None = None) -> list[str]:
    """Run the serving-mode smoke; returns a list of failed checks."""
    problems: list[str] = []
    trace_config = LoadTraceConfig(seed=seed, num_jobs=jobs, num_tenants=8)
    config = HarnessConfig(
        trace=trace_config, recurring_tenants=2, recurring_periods=3
    )
    trace = generate_trace(trace_config)

    metrics = MetricsRegistry()
    aggregator = WindowedAggregator(metrics, WindowConfig(interval=0.05))
    monitor = SloMonitor(aggregator, default_slos(), metrics=metrics)
    ledger = CostLedger(metrics=metrics)
    harness = LoadHarness(config, metrics=metrics, ledger=ledger, live_metrics=True)

    mid_run: dict = {}
    with OpsServer(
        metrics,
        aggregator=aggregator,
        monitor=monitor,
        ledger=ledger,
        sample_interval=0.05,
    ) as server:
        report_box: list = []
        runner = threading.Thread(
            target=lambda: report_box.append(harness.run(trace)), daemon=True
        )
        runner.start()
        # Scrape while the harness is running; keep the last mid-run
        # scrape that saw the run still alive.
        while runner.is_alive():
            scrape = {
                "metrics": _get(server.url + "/metrics"),
                "slo": _get(server.url + "/slo"),
                "health": _get(server.url + "/health"),
            }
            if runner.is_alive():
                mid_run = scrape
        runner.join()
        report = report_box[0]
        # Final state: one more sample + evaluation, then scrape.
        aggregator.sample()
        monitor.evaluate()
        final_metrics = _get(server.url + "/metrics")
        final_slo = json.loads(_get(server.url + "/slo"))
        final_tenants = json.loads(_get(server.url + "/tenants"))

    # -- check 1: exposition parses (mid-run and final) -----------------
    if not mid_run:
        problems.append("no mid-run scrape landed (run finished too fast?)")
    for label, text in (
        ("mid-run", mid_run.get("metrics", "")),
        ("final", final_metrics),
    ):
        if not text:
            continue
        try:
            samples = parse_prometheus(text)
        except ValueError as exc:
            problems.append(f"{label} /metrics failed to parse: {exc}")
            continue
        if not any(name.startswith("load_") for name, _ in samples):
            problems.append(f"{label} /metrics carries no load_* series")

    # -- check 2: SLO evaluations happened, miss-rate burn is served ----
    if final_slo["evaluations"] < 1:
        problems.append("SLO monitor never evaluated")
    by_name = {o["name"]: o for o in final_slo["objectives"]}
    miss = by_name.get("deadline_miss_rate")
    if miss is None:
        problems.append("/slo has no deadline_miss_rate objective")
    elif len(miss["burn_rate"]) != len(aggregator.config.windows):
        problems.append(
            f"deadline_miss_rate burn rates cover {len(miss['burn_rate'])} "
            f"windows, expected {len(aggregator.config.windows)}"
        )

    # -- check 3: per-tenant dollars sum to the report's user cost ------
    billed = final_tenants["totals"]["dollars"]
    if abs(billed - report.user_cost_dollars) > 1e-6:
        problems.append(
            f"/tenants dollars {billed!r} != report user cost "
            f"{report.user_cost_dollars!r}"
        )
    if report.executed and not final_tenants["tenants"]:
        problems.append("runs executed but /tenants is empty")

    # -- check 4: serving never perturbs the simulated outcome ----------
    plain = LoadHarness(config, metrics=MetricsRegistry()).run(trace)
    if plain.fingerprint() != report.fingerprint():
        problems.append(
            "serving-mode fingerprint diverged from plain run: "
            f"{report.fingerprint()} != {plain.fingerprint()}"
        )

    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / "report.txt").write_text(report.render() + "\n")
        (out / "metrics.prom").write_text(final_metrics)
        if mid_run:
            (out / "metrics.midrun.prom").write_text(mid_run["metrics"])
            (out / "slo.midrun.json").write_text(mid_run["slo"] + "\n")
        (out / "slo.json").write_text(
            json.dumps(final_slo, indent=1, sort_keys=True) + "\n"
        )
        (out / "tenants.json").write_text(
            json.dumps(final_tenants, indent=1, sort_keys=True) + "\n"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.load.ops_smoke", description=__doc__
    )
    parser.add_argument("--jobs", type=int, default=100)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    problems = run_smoke(jobs=args.jobs, seed=args.seed, out=args.out)
    if problems:
        for problem in problems:
            print(f"OPS SMOKE FAIL: {problem}", file=sys.stderr)
        return 1
    print("ops smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
