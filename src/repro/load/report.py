"""Load-run reporting: percentiles, Granny-style costs, rendering.

The report separates two kinds of numbers:

* **Simulated outcomes** — admission counts, deadline misses, skipped
  windows, machine-seconds and dollars.  These are deterministic in the
  trace seed (the market and every decision are), and
  :meth:`LoadReport.fingerprint` pins exactly this subset, so two runs
  of the same seed must produce identical fingerprints.
* **Wall-clock measurements** — plan-latency and queue-wait
  percentiles.  Real time on the machine that ran the harness; never
  part of the fingerprint.

The three Granny-style costs follow the makespan-experiment framing
(provider cost, user cost, service time):

* ``provider_idle_machine_s`` — billed machine-seconds in excess of the
  job's ideal compute (``work x t_exec(lrc) x lrc workers``): boot,
  loading, checkpoints, work redone after evictions — capacity the
  provider had committed that produced no new progress.
* ``user_cost_dollars`` — the bill across all executed runs.
* ``service_time_s`` — release-to-finish wall clock summed over runs
  (what a user staring at the job experiences, queueing included).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.experiments.report import format_table


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile of *values* (q in [0, 100]).

    Deterministic and dependency-light (no NumPy dtype surprises):
    sorts the values and interpolates between the two nearest ranks.
    Returns 0.0 for an empty input.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    data = sorted(float(v) for v in values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    rank = q / 100.0 * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass(frozen=True)
class LoadReport:
    """Everything one load-harness run measured."""

    # Workload identity
    seed: int
    num_jobs: int
    num_tenants: int
    trace_checksum: str
    trace_span_s: float

    # Admission / planning outcomes (deterministic)
    offered: int
    admitted: int
    planned: int
    rejected_overload: int
    rejected_invalid: int
    deadline_lost: int
    queued: int
    queue_peak: int

    # Service cache behaviour (deterministic)
    cache_hit_rate: float
    snapshot_hit_rate: float

    # Plan-latency percentiles (wall clock, ms)
    plan_p50_ms: float
    plan_p95_ms: float
    plan_p99_ms: float
    queue_wait_p50_ms: float
    queue_wait_p95_ms: float
    queue_wait_p99_ms: float

    # One-shot execution outcomes (deterministic)
    executed: int
    missed: int
    miss_rate: float

    # Recurring-tenant outcomes (deterministic)
    recurring_tenants: int
    recurring_runs: int
    recurring_missed: int
    recurring_skipped: int
    recurring_miss_rate: float
    recurring_skipped_rate: float
    recurring_violation_rate: float

    # Granny-style costs (deterministic)
    provider_idle_machine_s: float
    user_cost_dollars: float
    service_time_s: float

    # Elastic-rescaling outcomes (deterministic; see fingerprint() for
    # the disabled-mode back-compat rule).
    elastic: bool = False
    rescales: int = 0
    rescale_shrinks: int = 0
    rescale_seconds: float = 0.0

    # Frontend / planner-pool behaviour (wall-clock-dependent: how many
    # requests coalesced and how the pool scaled depend on real-time
    # interleaving, so none of these join the fingerprint).
    frontend: bool = False
    coalesce_hits: int = 0
    pool_size_peak: int = 0
    pool_size_low: int = 0
    pool_scale_ups: int = 0
    pool_scale_downs: int = 0
    dispatch_batches: int = 0
    dispatch_batch_max: int = 0

    # Engine-exercise outcomes (deterministic; serial mode drops them
    # from the fingerprint, keeping pre-scale-out reports byte-identical).
    engine_mode: str = "serial"
    engine_supersteps: int = 0
    engine_parallel_match: bool = False

    #: Fields excluded from :meth:`fingerprint` on top of the ``*_ms``
    #: wall-clock percentiles: everything measuring the serving layer's
    #: real-time behaviour rather than a simulated outcome.
    WALL_CLOCK_FIELDS = frozenset(
        {
            "coalesce_hits",
            "pool_size_peak",
            "pool_size_low",
            "pool_scale_ups",
            "pool_scale_downs",
            "dispatch_batches",
            "dispatch_batch_max",
        }
    )

    def fingerprint(self) -> str:
        """SHA-256 over the deterministic (simulated) fields only.

        Wall-clock percentiles (``*_ms``) and the serving-layer fields
        in :data:`WALL_CLOCK_FIELDS` are excluded; two windowed runs of
        one seed must produce identical fingerprints.  (Frontend-mode
        simulated outcomes are reproducible too unless backpressure
        overflow — a real-time effect — sheds different jobs.)
        """
        payload = {
            k: v
            for k, v in asdict(self).items()
            if not k.endswith("_ms") and k not in self.WALL_CLOCK_FIELDS
        }
        # Back-compat: with elasticity off and no rescales anywhere, the
        # payload (and so the fingerprint) is byte-identical to the
        # pre-elasticity report schema.
        elastic_keys = ("elastic", "rescales", "rescale_shrinks", "rescale_seconds")
        if not any(payload[k] for k in elastic_keys):
            for k in elastic_keys:
                payload.pop(k)
        # Same rule for the engine exercise: a serial-mode run's
        # fingerprint matches reports from before engine modes existed.
        if payload["engine_mode"] == "serial":
            for k in ("engine_mode", "engine_supersteps", "engine_parallel_match"):
                payload.pop(k)
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Aligned text tables, one section per concern."""
        pct = lambda x: f"{100.0 * x:.1f}%"  # noqa: E731
        sections = [
            format_table(
                [
                    {
                        "jobs": self.num_jobs,
                        "tenants": self.num_tenants,
                        "seed": self.seed,
                        "span_h": round(self.trace_span_s / 3600.0, 2),
                        "trace_sha256": self.trace_checksum[:12],
                        "fingerprint": self.fingerprint()[:12],
                    }
                ],
                title="Load harness — workload",
            ),
            format_table(
                [
                    {
                        "offered": self.offered,
                        "admitted": self.admitted,
                        "planned": self.planned,
                        "rej_overload": self.rejected_overload,
                        "rej_invalid": self.rejected_invalid,
                        "deadline_lost": self.deadline_lost,
                        "queued": self.queued,
                        "queue_peak": self.queue_peak,
                    }
                ],
                title="Admission + batch planning",
            ),
            format_table(
                [
                    {
                        "plan_p50_ms": round(self.plan_p50_ms, 3),
                        "plan_p95_ms": round(self.plan_p95_ms, 3),
                        "plan_p99_ms": round(self.plan_p99_ms, 3),
                        "qwait_p50_ms": round(self.queue_wait_p50_ms, 3),
                        "qwait_p95_ms": round(self.queue_wait_p95_ms, 3),
                        "qwait_p99_ms": round(self.queue_wait_p99_ms, 3),
                        "cache_hits": pct(self.cache_hit_rate),
                        "snapshot_hits": pct(self.snapshot_hit_rate),
                    }
                ],
                title="Plan latency (wall clock) + service caches",
            ),
            format_table(
                [
                    {
                        "executed": self.executed,
                        "missed": self.missed,
                        "miss_rate": pct(self.miss_rate),
                    }
                ],
                title="One-shot executions",
            ),
            format_table(
                [
                    {
                        "tenants": self.recurring_tenants,
                        "runs": self.recurring_runs,
                        "missed": self.recurring_missed,
                        "skipped": self.recurring_skipped,
                        "miss_rate": pct(self.recurring_miss_rate),
                        "skipped_rate": pct(self.recurring_skipped_rate),
                        "violation_rate": pct(self.recurring_violation_rate),
                    }
                ],
                title="Recurring tenants (interleaved)",
            ),
            format_table(
                [
                    {
                        "rescales": self.rescales,
                        "shrinks": self.rescale_shrinks,
                        "rescale_s": round(self.rescale_seconds, 1),
                        "per_run": round(self.rescales / self.executed, 2)
                        if self.executed
                        else 0.0,
                    }
                ],
                title="Elastic rescaling (planned moves)",
            )
            if self.elastic
            else None,
            format_table(
                [
                    {
                        "coalesce_hits": self.coalesce_hits,
                        "pool_peak": self.pool_size_peak,
                        "pool_low": self.pool_size_low,
                        "scale_ups": self.pool_scale_ups,
                        "scale_downs": self.pool_scale_downs,
                        "batches": self.dispatch_batches,
                        "batch_max": self.dispatch_batch_max,
                    }
                ],
                title="Frontend + planner pool",
            )
            if self.frontend
            else None,
            format_table(
                [
                    {
                        "mode": self.engine_mode,
                        "supersteps": self.engine_supersteps,
                        "parallel_match": self.engine_parallel_match,
                    }
                ],
                title="Engine exercise (serial vs parallel)",
            )
            if self.engine_mode != "serial"
            else None,
            format_table(
                [
                    {
                        "provider_idle_machine_s": round(self.provider_idle_machine_s, 1),
                        "user_cost_$": round(self.user_cost_dollars, 2),
                        "service_time_s": round(self.service_time_s, 1),
                        "mean_service_time_s": round(
                            self.service_time_s / self.executed, 1
                        )
                        if self.executed
                        else 0.0,
                    }
                ],
                title="Granny-style costs (provider / user / service time)",
            ),
        ]
        return "\n\n".join(section for section in sections if section is not None)


# ----------------------------------------------------------------------
# Live-operations sections (rendered by the CLI *outside* the report, so
# the report fingerprint never depends on serving-mode observations)
# ----------------------------------------------------------------------
def format_slo_section(slo_payload: dict) -> str:
    """The ``/slo`` payload as a report table (one row per objective)."""
    rows = []
    for obj in slo_payload.get("objectives", []):
        burns = obj.get("burn_rate", {})
        worst = max(burns.values()) if burns else 0.0
        rows.append(
            {
                "objective": obj["name"],
                "kind": obj["kind"],
                "target": obj["target"],
                "worst_burn": round(worst, 3),
                "firing": ",".join(obj.get("firing", [])) or "-",
            }
        )
    if not rows:
        rows = [{"objective": "-", "kind": "-", "target": 0,
                 "worst_burn": 0.0, "firing": "-"}]
    title = (
        f"SLO monitor ({slo_payload.get('evaluations', 0)} evaluations, "
        f"{slo_payload.get('alerts', 0)} alert transitions)"
    )
    return format_table(rows, title=title)


def format_tenant_section(tenant_payload: dict, top: int = 8) -> str:
    """The ``/tenants`` payload as a report table (top spenders first)."""
    pct = lambda x: f"{100.0 * x:.1f}%"  # noqa: E731
    rows = [
        {
            "tenant": usage["tenant"],
            "runs": usage["runs"],
            "dollars": round(usage["dollars"], 2),
            "machine_s": round(
                usage["spot_seconds"] + usage["on_demand_seconds"], 1
            ),
            "idle_s": round(usage["idle_seconds"], 1),
            "compliance": pct(usage["slo_compliance"]),
        }
        for usage in tenant_payload.get("tenants", [])[:top]
    ]
    totals = tenant_payload.get("totals")
    if totals:
        rows.append(
            {
                "tenant": "TOTAL",
                "runs": totals["runs"],
                "dollars": round(totals["dollars"], 2),
                "machine_s": round(
                    totals["spot_seconds"] + totals["on_demand_seconds"], 1
                ),
                "idle_s": round(totals["idle_seconds"], 1),
                "compliance": pct(totals["slo_compliance"]),
            }
        )
    if not rows:
        rows = [{"tenant": "-", "runs": 0, "dollars": 0.0,
                 "machine_s": 0.0, "idle_s": 0.0, "compliance": "-"}]
    shown = len(tenant_payload.get("tenants", []))
    title = f"Per-tenant cost attribution (top {min(top, shown)} of {shown})"
    return format_table(rows, title=title)
