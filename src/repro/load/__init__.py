"""Trace-driven multi-tenant load harness (the standing macro-benchmark).

Generates thousands of tenant jobs as a seeded arrival trace (Poisson
arrivals with diurnal + burst modulation, mixed algorithms, graph
scales, slacks and periods), pushes them through an admission-controlled
:class:`~repro.service.planning.PlanningService` batch path and the
:class:`~repro.core.recurring.InterleavedRecurringDriver`, and reports
plan-latency percentiles, cache hit rates, deadline-miss / skipped-
window rates and the three Granny-style costs (provider idle
machine-seconds, user cost, service time)::

    python -m repro.load --jobs 1000 --seed 42

See :mod:`repro.load.trace` (workload generation),
:mod:`repro.load.admission` (bounded-queue admission control),
:mod:`repro.load.harness` (the driver) and :mod:`repro.load.report`.
"""

from repro.load.admission import AdmissionController, AdmissionStats
from repro.load.harness import HarnessConfig, LoadHarness
from repro.load.report import LoadReport
from repro.load.trace import ArrivalTrace, LoadTraceConfig, TraceJob, generate_trace

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "ArrivalTrace",
    "HarnessConfig",
    "LoadHarness",
    "LoadReport",
    "LoadTraceConfig",
    "TraceJob",
    "generate_trace",
]
