"""The load harness: an arrival trace driven through the whole stack.

One :class:`LoadHarness` run is the standing macro-benchmark:

1. :func:`~repro.load.trace.generate_trace` samples the seeded
   multi-tenant workload.
2. Arrivals are chopped into fixed planning windows; each window flows
   through the :class:`~repro.load.admission.AdmissionController`
   (bounded queue, tail-drop) and the admitted jobs are planned in one
   :meth:`~repro.service.planning.PlanningService.plan_many` batch with
   per-slot errors — a saturating trace degrades job-by-job, never as a
   whole-batch :class:`~repro.service.planning.PlanError`.
3. Planned jobs execute through :class:`ExecutionSimulator` against the
   same market, sharing the service's warm caches; queueing delay is
   charged in *simulated* time (a job admitted two windows late starts
   two windows late, with that much less slack).
4. A set of recurring tenants runs through
   :class:`~repro.core.recurring.InterleavedRecurringDriver` on the same
   service, exercising the overload-honest skipped-window accounting.

Everything simulated is deterministic in the seed
(:meth:`LoadReport.fingerprint` pins it); only the wall-clock latency
percentiles vary run to run.  Aggregates are also published to a
:class:`~repro.obs.metrics.MetricsRegistry` (``load_*`` series) so a
traced run exports through the standard :mod:`repro.obs` pipelines.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.job import PAPER_PROFILES, JobSpec
from repro.core.recurring import InterleavedRecurringDriver, RecurringJobSpec
from repro.core.simulator import ExecutionSimulator
from repro.core.slack import SlackModel
from repro.exec.events import RunResult
from repro.exec.frontier import frontier_for_app
from repro.experiments.common import ExperimentSetup
from repro.load.admission import AdmissionController
from repro.load.report import LoadReport, percentile
from repro.load.trace import ArrivalTrace, LoadTraceConfig, TraceJob, generate_trace
from repro.obs.state import get_metrics
from repro.service.frontend import (
    FrontendConfig,
    FrontendOverloadError,
    PlanFrontend,
)
from repro.service.planning import PlanError, PlanningService, PlanRequest, PlanResult
from repro.service.pool import PoolConfig
from repro.utils.rng import derive_rng
from repro.utils.units import HOURS


@dataclass
class _PhaseTotals:
    """Mutable accumulator one planning phase fills in.

    Both phases (windowed and frontend) produce the same counters, so
    the report assembly in :meth:`LoadHarness.run` is phase-agnostic;
    the ``pool_*`` / ``coalesce_hits`` / ``dispatch_*`` fields stay zero
    on the windowed path.
    """

    latencies: list[float] = field(default_factory=list)
    queue_waits: list[float] = field(default_factory=list)
    offered: int = 0
    admitted: int = 0
    planned: int = 0
    rejected_overload: int = 0
    rejected_invalid: int = 0
    deadline_lost: int = 0
    queued: int = 0
    queue_peak: int = 0
    executed: int = 0
    missed: int = 0
    provider_idle: float = 0.0
    user_cost: float = 0.0
    service_time: float = 0.0
    coalesce_hits: int = 0
    pool_size_peak: int = 0
    pool_size_low: int = 0
    pool_scale_ups: int = 0
    pool_scale_downs: int = 0
    dispatch_batches: int = 0
    dispatch_batch_max: int = 0
    rescales: int = 0
    rescale_shrinks: int = 0
    rescale_seconds: float = 0.0

    def fold_rescales(self, result: RunResult) -> None:
        """Fold one run's planned-rescale counters into the totals."""
        self.rescales += result.rescales
        self.rescale_shrinks += sum(
            1 for r in result.rescale_records if r.action == "shrink"
        )
        self.rescale_seconds += result.rescale_seconds


@dataclass(frozen=True)
class HarnessConfig:
    """One load run: the workload plus the service-shaped knobs.

    Attributes:
        trace: the workload generator config (seed lives here).
        window_s: planning-window length; arrivals inside one window are
            admitted and planned together at the window's close.
        capacity_per_window: service capacity per window (requests the
            admission layer releases into one ``plan_many`` batch).
        queue_limit: admission backlog bound; beyond it, tail-drop.
        strategy: planning strategy for every job.
        execute: run planned jobs through the simulator (False = plan
            only; deadline/cost sections of the report stay zero).
        trace_days: market-trace length backing the run.
        recurring_tenants / recurring_periods: size of the interleaved
            recurring phase (0 tenants disables it).
        frontend: plan through the async :class:`PlanFrontend` (request
            coalescing + autoscaled planner pool + backpressure)
            instead of the windowed admission + ``plan_many`` path.
            Decision time is still quantized to the arrival's window
            close, so the simulated-slack bookkeeping matches the
            windowed path; the backlog/tail-drop guardrail is replaced
            by the frontend's own ``max_inflight`` bound.
        frontend_min_workers / frontend_max_workers: planner-pool size
            band in frontend mode.
        time_scale: simulated seconds per wall-clock second when pacing
            frontend submissions (0 = no pacing, saturation mode).
            Pacing lets the pool see the trace's bursts and troughs as
            genuine load swings instead of one continuous flood.
        elastic: run executions with the app's canonical frontier-decay
            curve and a provisioner that supports planned mid-job
            rescaling (pair with ``strategy="elastic"``); the report
            gains the ``rescale_*`` section.  Off by default — the
            disabled-mode fingerprint is byte-identical to pre-elastic
            reports.
        engine_mode: ``"serial"`` (default) or ``"parallel"``.  Parallel
            mode additionally runs a real Pregel job through both the
            serial and the shared-memory multiprocess engine and records
            their bit-identity in the report; serial mode leaves the
            fingerprint byte-identical to pre-scale-out reports.
    """

    trace: LoadTraceConfig = field(default_factory=LoadTraceConfig)
    window_s: float = 60.0
    capacity_per_window: int = 64
    queue_limit: int = 256
    strategy: str = "hourglass"
    execute: bool = True
    trace_days: int = 14
    recurring_tenants: int = 4
    recurring_periods: int = 6
    frontend: bool = False
    frontend_min_workers: int = 1
    frontend_max_workers: int = 4
    time_scale: float = 0.0
    elastic: bool = False
    engine_mode: str = "serial"

    def __post_init__(self):
        if self.engine_mode not in ("serial", "parallel"):
            raise ValueError(
                f"engine_mode must be 'serial' or 'parallel', got {self.engine_mode!r}"
            )
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.recurring_tenants < 0 or self.recurring_periods < 1:
            raise ValueError("recurring_tenants >= 0, recurring_periods >= 1")
        if self.frontend_min_workers < 1:
            raise ValueError("frontend_min_workers must be >= 1")
        if self.frontend_max_workers < self.frontend_min_workers:
            raise ValueError("frontend_max_workers must be >= frontend_min_workers")
        if self.time_scale < 0:
            raise ValueError("time_scale must be >= 0 (0 disables pacing)")


class LoadHarness:
    """Drives one :class:`HarnessConfig` end to end.

    Args:
        config: the run description.
        metrics: registry for the ``load_*`` series (default: the
            process registry).
        ledger: optional :class:`~repro.obs.attribution.CostLedger`;
            every executed run (one-shot and recurring) is attributed
            to its trace tenant as it finishes, so per-tenant spend is
            queryable mid-run and its dollar total matches the final
            report's ``user_cost_dollars``.
        live_metrics: publish the ``load_*`` series incrementally at
            event time (scrapeable mid-run) instead of once at the end
            of :meth:`run`.  The end-of-run totals published are
            identical either way — live mode only changes *when* the
            series move, never the simulated results or the report
            fingerprint.
    """

    def __init__(
        self,
        config: HarnessConfig,
        metrics=None,
        ledger=None,
        live_metrics: bool = False,
    ):
        self.config = config
        self.metrics = metrics if metrics is not None else get_metrics()
        self.ledger = ledger
        self.live_metrics = live_metrics
        self.setup = ExperimentSetup(
            seed=config.trace.seed, trace_days=config.trace_days
        )
        self.service = PlanningService(self.setup.market)
        self._models: dict[tuple[str, float], tuple] = {}
        self._simulators: dict[tuple[str, float], ExecutionSimulator] = {}
        self._recurring_apps: dict[str, tuple[str, float]] = {}
        if live_metrics:
            self._init_live_series()

    def _init_live_series(self) -> None:
        """Zero-touch every live ``load_*`` series so the scrape schema
        is stable from the first sample (a windowed ratio over a series
        that does not exist yet reads as no-traffic, which is correct,
        but a stable label set makes dashboards and tests simpler)."""
        mx = self.metrics
        jobs = mx.counter("load_jobs_total", "Trace jobs by admission outcome")
        for outcome in (
            "planned", "rejected_overload", "rejected_invalid", "deadline_lost"
        ):
            jobs.inc(0, outcome=outcome)
        runs = mx.counter("load_runs_total", "Executed one-shot runs by outcome")
        runs.inc(0, outcome="met")
        runs.inc(0, outcome="missed")
        rec = mx.counter(
            "load_recurring_windows_total", "Recurring windows by outcome"
        )
        for outcome in ("met", "missed", "skipped"):
            rec.inc(0, outcome=outcome)
        mx.histogram(
            "load_plan_latency_seconds", "Per-slot plan service time (batch path)"
        )
        mx.histogram("load_plan_queue_wait_seconds", "Per-slot batch queue wait")
        mx.counter(
            "load_provider_idle_machine_seconds_total",
            "Billed machine-seconds beyond ideal compute (Granny provider cost)",
        ).inc(0)
        mx.counter(
            "load_user_cost_dollars_total", "Dollars billed across executed runs"
        ).inc(0)
        mx.counter(
            "load_service_time_seconds_total",
            "Arrival-to-finish simulated seconds across executed runs",
        ).inc(0)

    # ------------------------------------------------------------------
    # Live publication (no-ops unless live_metrics is on)
    # ------------------------------------------------------------------
    def _live_job(self, outcome: str, n: int = 1) -> None:
        if self.live_metrics and n:
            self.metrics.counter(
                "load_jobs_total", "Trace jobs by admission outcome"
            ).inc(n, outcome=outcome)

    def _live_plan(self, latency_s: float, queue_wait_s: float) -> None:
        if self.live_metrics:
            self.metrics.histogram(
                "load_plan_latency_seconds",
                "Per-slot plan service time (batch path)",
            ).observe(latency_s)
            self.metrics.histogram(
                "load_plan_queue_wait_seconds", "Per-slot batch queue wait"
            ).observe(queue_wait_s)

    def _live_run(
        self, counter: str, result: RunResult, idle: float, span: float
    ) -> None:
        if not self.live_metrics:
            return
        mx = self.metrics
        mx.counter(counter, "").inc(
            1, outcome="missed" if result.missed_deadline else "met"
        )
        mx.counter("load_provider_idle_machine_seconds_total", "").inc(idle)
        mx.counter("load_user_cost_dollars_total", "").inc(result.cost)
        mx.counter("load_service_time_seconds_total", "").inc(span)

    # ------------------------------------------------------------------
    # Per-(app, scale) plumbing
    # ------------------------------------------------------------------
    def _model_for(self, app: str, scale: float):
        """(profile, perf, lrc, grids) for one application/scale mix cell.

        Memo grids are pinned per mix cell (resolved once, at the cell's
        median slack) exactly like a tenant's provisioner session pins
        its grids: every request of the cell then lands in one estimator
        key, so the batch path shares warm memo across tenants instead
        of resolving a fresh grid — and a cold estimator — per slack
        value.
        """
        key = (app, scale)
        entry = self._models.get(key)
        if entry is None:
            profile = PAPER_PROFILES[app].scaled(scale)
            perf = self.setup.perf_model(profile)
            lrc = self.setup.lrc(perf)
            lo, hi = self.config.trace.slack_range
            mid = 0.5 * (lo + hi)
            anchor = SlackModel(
                perf=perf,
                lrc=lrc,
                deadline=perf.fixed_time(lrc) + perf.exec_time(lrc) * (1.0 + mid),
            )
            grids = self.service.resolved_grids(anchor, 0.0, 1.0)
            entry = self._models[key] = (profile, perf, lrc, grids)
        return entry

    def _simulator_for(self, app: str, scale: float) -> ExecutionSimulator:
        key = (app, scale)
        sim = self._simulators.get(key)
        if sim is None:
            _, perf, _, _ = self._model_for(app, scale)
            sim = self._simulators[key] = ExecutionSimulator(
                self.setup.market,
                perf,
                self.setup.catalog,
                self.config.strategy,
                record_events=False,
                service=self.service,
                frontier_curve=frontier_for_app(app) if self.config.elastic else None,
            )
        return sim

    def _deadline_for(self, job: TraceJob) -> float:
        """Arrival-anchored deadline (fixed + (1 + slack) x execution)."""
        _, perf, lrc, _ = self._model_for(job.app, job.scale)
        release = self.setup.market.start + job.arrival_s
        return (
            release
            + perf.fixed_time(lrc)
            + perf.exec_time(lrc) * (1.0 + job.slack_fraction)
        )

    def _job_budget_s(self) -> float:
        """Worst-case simulated span one trace job might need."""
        worst = 0.0
        for app, _ in self.config.trace.app_mix:
            for scale in self.config.trace.scales:
                _, perf, lrc, _ = self._model_for(app, scale)
                horizon = perf.fixed_time(lrc) + perf.exec_time(lrc) * (
                    1.0 + self.config.trace.slack_range[1]
                )
                worst = max(worst, horizon)
        return 4.0 * worst

    def _request_for(self, job: TraceJob, t_plan: float) -> PlanRequest:
        """The job's plan request at decision time *t_plan*."""
        _, perf, lrc, grids = self._model_for(job.app, job.scale)
        return PlanRequest(
            slack_model=SlackModel(
                perf=perf, lrc=lrc, deadline=self._deadline_for(job)
            ),
            catalog=self.setup.catalog,
            t=t_plan,
            work_left=1.0,
            strategy=self.config.strategy,
            slack_grid=grids[0],
            work_grid=grids[1],
        )

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self, trace: ArrivalTrace | None = None) -> LoadReport:
        """Execute the configured load run; returns the report."""
        cfg = self.config
        if trace is None:
            trace = generate_trace(cfg.trace)
        market = self.setup.market
        budget = self._job_budget_s()
        needed = trace.span_s + budget + cfg.queue_limit * cfg.window_s
        if market.start + needed > market.horizon:
            raise ValueError(
                f"market trace too short for this workload: needs ~{needed / HOURS:.1f} h,"
                f" have {(market.horizon - market.start) / HOURS:.1f} h —"
                " raise trace_days or shrink the trace"
            )

        totals = _PhaseTotals()
        if cfg.frontend:
            self._frontend_phase(trace, totals)
        else:
            self._windowed_phase(trace, totals)

        recurring = self._run_recurring()
        for name, outcome in recurring.items():
            app, scale = self._recurring_apps[name]
            ideal = self._ideal_seconds(app, scale)
            for result in outcome.results:
                billed = result.spot_seconds + result.on_demand_seconds
                idle = max(0.0, billed - ideal)
                totals.user_cost += result.cost
                totals.fold_rescales(result)
                # Scheduled release (deadline - period) anchors service
                # time, so an overrun-delayed run is charged its wait.
                scheduled = result.deadline - outcome.period
                span = result.finish_time - scheduled
                totals.service_time += span
                totals.provider_idle += idle
                self._live_run("load_recurring_windows_total", result, idle, span)
                if self.ledger is not None:
                    self.ledger.record_run(name, result, ideal, arrival=scheduled)
            if self.live_metrics and outcome.skipped:
                self.metrics.counter(
                    "load_recurring_windows_total", "Recurring windows by outcome"
                ).inc(outcome.skipped, outcome="skipped")
        rec_runs = sum(o.runs for o in recurring.values())
        rec_missed = sum(o.missed for o in recurring.values())
        rec_skipped = sum(o.skipped for o in recurring.values())
        rec_windows = rec_runs + rec_skipped

        engine_supersteps = 0
        engine_parallel_match = False
        if cfg.engine_mode == "parallel":
            engine_supersteps, engine_parallel_match = self._engine_exercise()

        stats = self.service.cache_stats()
        svc = self.service.service_stats()
        lookups = stats.hits + stats.misses
        snapshots = svc["snapshot_hits"] + svc["snapshot_misses"]
        report = LoadReport(
            seed=cfg.trace.seed,
            num_jobs=cfg.trace.num_jobs,
            num_tenants=cfg.trace.num_tenants,
            trace_checksum=trace.checksum(),
            trace_span_s=trace.span_s,
            offered=totals.offered,
            admitted=totals.admitted,
            planned=totals.planned,
            rejected_overload=totals.rejected_overload,
            rejected_invalid=totals.rejected_invalid,
            deadline_lost=totals.deadline_lost,
            queued=totals.queued,
            queue_peak=totals.queue_peak,
            cache_hit_rate=stats.hits / lookups if lookups else 0.0,
            snapshot_hit_rate=svc["snapshot_hits"] / snapshots if snapshots else 0.0,
            plan_p50_ms=1000 * percentile(totals.latencies, 50),
            plan_p95_ms=1000 * percentile(totals.latencies, 95),
            plan_p99_ms=1000 * percentile(totals.latencies, 99),
            queue_wait_p50_ms=1000 * percentile(totals.queue_waits, 50),
            queue_wait_p95_ms=1000 * percentile(totals.queue_waits, 95),
            queue_wait_p99_ms=1000 * percentile(totals.queue_waits, 99),
            executed=totals.executed,
            missed=totals.missed,
            miss_rate=totals.missed / totals.executed if totals.executed else 0.0,
            recurring_tenants=len(recurring),
            recurring_runs=rec_runs,
            recurring_missed=rec_missed,
            recurring_skipped=rec_skipped,
            recurring_miss_rate=rec_missed / rec_runs if rec_runs else 0.0,
            recurring_skipped_rate=rec_skipped / rec_windows if rec_windows else 0.0,
            recurring_violation_rate=(rec_missed + rec_skipped) / rec_windows
            if rec_windows
            else 0.0,
            provider_idle_machine_s=totals.provider_idle,
            user_cost_dollars=totals.user_cost,
            service_time_s=totals.service_time,
            elastic=cfg.elastic,
            rescales=totals.rescales,
            rescale_shrinks=totals.rescale_shrinks,
            rescale_seconds=totals.rescale_seconds,
            frontend=cfg.frontend,
            coalesce_hits=totals.coalesce_hits,
            pool_size_peak=totals.pool_size_peak,
            pool_size_low=totals.pool_size_low,
            pool_scale_ups=totals.pool_scale_ups,
            pool_scale_downs=totals.pool_scale_downs,
            dispatch_batches=totals.dispatch_batches,
            dispatch_batch_max=totals.dispatch_batch_max,
            engine_mode=cfg.engine_mode,
            engine_supersteps=engine_supersteps,
            engine_parallel_match=engine_parallel_match,
        )
        self._publish_metrics(report, totals.latencies, totals.queue_waits)
        return report

    # ------------------------------------------------------------------
    # Planning phases
    # ------------------------------------------------------------------
    def _windowed_phase(self, trace: ArrivalTrace, totals: "_PhaseTotals") -> None:
        """PR 6 path: bounded admission + windowed ``plan_many`` batches."""
        cfg = self.config
        market = self.setup.market
        controller = AdmissionController(
            capacity_per_window=cfg.capacity_per_window, queue_limit=cfg.queue_limit
        )
        num_windows = max(1, math.ceil(trace.span_s / cfg.window_s) + 1)
        job_iter = iter(trace.jobs)
        pending_job = next(job_iter, None)
        window = 0
        while True:
            window_end = market.start + (window + 1) * cfg.window_s
            arrivals: list[TraceJob] = []
            while (
                pending_job is not None
                and market.start + pending_job.arrival_s < window_end
            ):
                arrivals.append(pending_job)
                pending_job = next(job_iter, None)
            admitted, rejected = controller.offer(arrivals)
            totals.rejected_overload += len(rejected)
            self._live_job("rejected_overload", len(rejected))

            requests: list[PlanRequest] = []
            request_jobs: list[TraceJob] = []
            for entry in admitted:
                job: TraceJob = entry.item  # type: ignore[assignment]
                if self._deadline_for(job) <= window_end:
                    # Queued past its whole deadline: the window is
                    # unservable — an SLO loss, not a planner error.
                    totals.deadline_lost += 1
                    self._live_job("deadline_lost")
                    continue
                requests.append(self._request_for(job, window_end))
                request_jobs.append(job)

            if requests:
                slots = self.service.plan_many(requests, return_exceptions=True)
                for job, slot in zip(request_jobs, slots):
                    if not isinstance(slot, PlanResult):
                        totals.rejected_invalid += 1
                        self._live_job("rejected_invalid")
                        continue
                    totals.planned += 1
                    totals.latencies.append(slot.telemetry.latency_s)
                    totals.queue_waits.append(slot.telemetry.queue_wait_s)
                    self._live_job("planned")
                    self._live_plan(
                        slot.telemetry.latency_s, slot.telemetry.queue_wait_s
                    )
                    self._execute_planned(job, window_end, totals)

            window += 1
            if window >= num_windows and pending_job is None and not controller.backlog:
                break
        totals.offered = controller.stats.offered
        totals.admitted = controller.stats.admitted
        totals.queued = controller.stats.queued
        totals.queue_peak = controller.stats.queue_peak

    def _frontend_phase(self, trace: ArrivalTrace, totals: "_PhaseTotals") -> None:
        """Tentpole path: the async frontend over the autoscaled pool.

        Submissions are grouped by planning window (each job's decision
        time is its arrival window's close, the same simulated-time
        bookkeeping as the windowed path) but dispatched concurrently —
        coalescing, batching and scaling happen inside the frontend.
        Planned jobs execute afterwards in arrival order, so the
        simulated phase is independent of wall-clock completion order.
        """
        cfg = self.config
        frontend = PlanFrontend(
            self.service,
            FrontendConfig(
                max_inflight=cfg.queue_limit + cfg.capacity_per_window,
                max_batch=cfg.capacity_per_window,
                pool=PoolConfig(
                    min_workers=cfg.frontend_min_workers,
                    max_workers=cfg.frontend_max_workers,
                ),
            ),
            metrics=self.metrics,
        )
        outcomes = asyncio.run(self._drive_frontend(frontend, trace, totals))
        stats = frontend.stats()
        totals.offered = len(trace.jobs)
        totals.admitted = totals.offered - totals.rejected_overload
        totals.coalesce_hits = stats.coalesced
        totals.pool_size_peak = stats.pool.size_peak
        totals.pool_size_low = stats.pool.size_low
        totals.pool_scale_ups = stats.pool.scale_ups
        totals.pool_scale_downs = stats.pool.scale_downs
        totals.dispatch_batches = stats.pool.batches
        totals.dispatch_batch_max = stats.pool.batch_max
        # Execute in arrival order, decoupled from resolution order.
        for job, t_plan in sorted(outcomes, key=lambda pair: pair[0].job_id):
            self._execute_planned(job, t_plan, totals)

    async def _drive_frontend(
        self, frontend: PlanFrontend, trace: ArrivalTrace, totals: "_PhaseTotals"
    ) -> list[tuple[TraceJob, float]]:
        """Submit the trace through the frontend; returns planned jobs."""
        cfg = self.config
        market = self.setup.market
        planned: list[tuple[TraceJob, float]] = []

        async def submit(job: TraceJob, t_plan: float) -> None:
            started = time.perf_counter()
            try:
                result = await frontend.plan(self._request_for(job, t_plan))
            except FrontendOverloadError:
                totals.rejected_overload += 1
                self._live_job("rejected_overload")
                return
            except PlanError:
                totals.rejected_invalid += 1
                self._live_job("rejected_invalid")
                return
            totals.planned += 1
            latency = time.perf_counter() - started
            totals.latencies.append(latency)
            totals.queue_waits.append(result.telemetry.queue_wait_s)
            self._live_job("planned")
            self._live_plan(latency, result.telemetry.queue_wait_s)
            planned.append((job, t_plan))

        async with frontend:
            tasks: list[asyncio.Task] = []
            job_iter = iter(trace.jobs)
            pending_job = next(job_iter, None)
            window = 0
            num_windows = max(1, math.ceil(trace.span_s / cfg.window_s) + 1)
            while window < num_windows or pending_job is not None:
                window_end = market.start + (window + 1) * cfg.window_s
                burst = 0
                while (
                    pending_job is not None
                    and market.start + pending_job.arrival_s < window_end
                ):
                    job = pending_job
                    deadline = self._deadline_for(job)
                    if deadline <= window_end:
                        totals.deadline_lost += 1
                        self._live_job("deadline_lost")
                    else:
                        tasks.append(asyncio.create_task(submit(job, window_end)))
                        burst += 1
                    pending_job = next(job_iter, None)
                window += 1
                if cfg.time_scale > 0:
                    await asyncio.sleep(cfg.window_s / cfg.time_scale)
                elif burst:
                    # Yield so the dispatcher and resolvers interleave
                    # with submission even in saturation mode.
                    await asyncio.sleep(0)
            if tasks:
                await asyncio.gather(*tasks)
            # Trough ticks: with no traffic left, let the autoscaler
            # observe the empty system until its EWMA decays and it
            # powers the pool back down to min_workers (the same ticks a
            # deployment's idle timer would deliver).  Gather returns
            # when the asyncio futures resolve, which is *before* the
            # worker threads record their completions — yield until the
            # in-system count drains or the ticks would decay a stale
            # load sample instead of the empty system.
            for _ in range(200):
                stats = frontend.pool.stats()
                if stats.size <= cfg.frontend_min_workers:
                    break
                if stats.in_system:
                    await asyncio.sleep(0.001)
                    continue
                frontend.pool.idle_tick()
        return planned

    # ------------------------------------------------------------------
    def _engine_exercise(self) -> tuple[int, bool]:
        """Serial-vs-parallel bit-identity spot check on a real engine.

        The harness's planning/execution stack is mechanistic, so
        parallel mode additionally runs one genuine Pregel job (SSSP on
        a grid, whose frontier crosses many supersteps regardless of
        the seed) through both execution modes and compares values and
        per-superstep stats exactly.  On hosts without fork the
        parallel engine transparently runs its serial path, so the
        comparison still holds (and still vouches for the fallback).
        """
        from repro.engine.algorithms.sssp import SSSP
        from repro.engine.engine import PregelEngine
        from repro.graph.generators import grid_graph
        from repro.partitioning.hashing import HashPartitioner

        graph = grid_graph(16, 16)
        partitioning = HashPartitioner().partition(graph, 4)
        serial = PregelEngine(graph, SSSP(source=0), partitioning).run()
        with PregelEngine(
            graph, SSSP(source=0), partitioning, execution="parallel"
        ) as engine:
            parallel = engine.run()
        match = (
            serial.supersteps_run == parallel.supersteps_run
            and np.array_equal(serial.values_array(), parallel.values_array())
            and serial.stats == parallel.stats
        )
        return serial.supersteps_run, match

    # ------------------------------------------------------------------
    def _execute_planned(
        self, job: TraceJob, release: float, totals: "_PhaseTotals"
    ) -> None:
        """Execute one planned job and fold its costs into *totals*."""
        if not self.config.execute:
            return
        result = self._execute(job, release)
        totals.executed += 1
        totals.missed += result.missed_deadline
        totals.fold_rescales(result)
        idle, dollars, span = self._granny_costs(job, result)
        totals.provider_idle += idle
        totals.user_cost += dollars
        totals.service_time += span
        self._live_run("load_runs_total", result, idle, span)
        if self.ledger is not None:
            self.ledger.record_run(
                job.tenant,
                result,
                self._ideal_seconds(job.app, job.scale),
                arrival=self.setup.market.start + job.arrival_s,
            )

    # ------------------------------------------------------------------
    def _execute(self, job: TraceJob, release: float) -> RunResult:
        """Run one planned job through the simulator (release = plan time)."""
        profile, _, _, _ = self._model_for(job.app, job.scale)
        sim = self._simulator_for(job.app, job.scale)
        spec = JobSpec(
            profile=profile, release_time=release, deadline=self._deadline_for(job)
        )
        return sim.run(spec)

    def _ideal_seconds(self, app: str, scale: float) -> float:
        """Ideal machine-seconds for one full run: t_exec(lrc) x workers."""
        _, perf, lrc, _ = self._model_for(app, scale)
        return perf.exec_time(lrc) * lrc.num_workers

    def _granny_costs(self, job: TraceJob, result: RunResult) -> tuple[float, float, float]:
        """(provider idle machine-s, user dollars, service-time s)."""
        billed = result.spot_seconds + result.on_demand_seconds
        idle = max(0.0, billed - self._ideal_seconds(job.app, job.scale))
        arrival = self.setup.market.start + job.arrival_s
        return idle, result.cost, result.finish_time - arrival

    # ------------------------------------------------------------------
    def _run_recurring(self):
        """The interleaved recurring phase over the shared service."""
        cfg = self.config
        if cfg.recurring_tenants == 0 or not cfg.execute:
            return {}
        rng = derive_rng(cfg.trace.seed, "recurring")
        names = [name for name, _ in cfg.trace.app_mix]
        total_w = sum(w for _, w in cfg.trace.app_mix)
        weights = [w / total_w for _, w in cfg.trace.app_mix]
        specs = []
        for r in range(cfg.recurring_tenants):
            app = names[int(rng.choice(len(names), p=weights))]
            scale = float(cfg.trace.scales[int(rng.integers(len(cfg.trace.scales)))])
            profile, perf, lrc, _ = self._model_for(app, scale)
            # Tight-but-legal period: the smallest configured period the
            # job can in principle fit (evictions make it overrun
            # occasionally — exactly the skipped-window regime).
            floor = 1.15 * (perf.fixed_time(lrc) + perf.exec_time(lrc))
            fitting = [p for p in cfg.trace.periods_s if p >= floor]
            period = min(fitting) if fitting else max(cfg.trace.periods_s)
            specs.append(
                RecurringJobSpec(
                    name=f"recurring-{r:02d}",
                    simulator=self._simulator_for(app, scale),
                    profile=profile,
                    period=period,
                    offset=r * cfg.window_s,
                )
            )
            self._recurring_apps[specs[-1].name] = (app, scale)
        driver = InterleavedRecurringDriver(specs)
        return driver.run(self.setup.market.start, cfg.recurring_periods)

    # ------------------------------------------------------------------
    def _publish_metrics(self, report: LoadReport, latencies, queue_waits) -> None:
        """Export the run's aggregates as ``load_*`` metrics series.

        In ``live_metrics`` mode the event-time publication already
        moved every counter/histogram below; re-adding the totals here
        would double-count, so only the end-of-run gauge (and the
        elastic section, which is folded from results, not events) is
        published.
        """
        mx = self.metrics
        if not self.live_metrics:
            jobs = mx.counter("load_jobs_total", "Trace jobs by admission outcome")
            jobs.inc(report.planned, outcome="planned")
            jobs.inc(report.rejected_overload, outcome="rejected_overload")
            jobs.inc(report.rejected_invalid, outcome="rejected_invalid")
            jobs.inc(report.deadline_lost, outcome="deadline_lost")
            lat = mx.histogram(
                "load_plan_latency_seconds", "Per-slot plan service time (batch path)"
            )
            for v in latencies:
                lat.observe(v)
            wait = mx.histogram(
                "load_plan_queue_wait_seconds", "Per-slot batch queue wait"
            )
            for v in queue_waits:
                wait.observe(v)
            runs = mx.counter("load_runs_total", "Executed one-shot runs by outcome")
            runs.inc(report.executed - report.missed, outcome="met")
            runs.inc(report.missed, outcome="missed")
            rec = mx.counter(
                "load_recurring_windows_total", "Recurring windows by outcome"
            )
            rec.inc(report.recurring_runs - report.recurring_missed, outcome="met")
            rec.inc(report.recurring_missed, outcome="missed")
            rec.inc(report.recurring_skipped, outcome="skipped")
            mx.counter(
                "load_provider_idle_machine_seconds_total",
                "Billed machine-seconds beyond ideal compute (Granny provider cost)",
            ).inc(report.provider_idle_machine_s)
            mx.counter(
                "load_user_cost_dollars_total", "Dollars billed across executed runs"
            ).inc(report.user_cost_dollars)
            mx.counter(
                "load_service_time_seconds_total",
                "Arrival-to-finish simulated seconds across executed runs",
            ).inc(report.service_time_s)
        mx.gauge("load_queue_peak", "Admission backlog high-water mark").set(
            report.queue_peak
        )
        if report.elastic:
            resc = mx.counter(
                "load_rescales_total", "Planned mid-job rescales across executed runs"
            )
            resc.inc(report.rescale_shrinks, action="shrink")
            resc.inc(report.rescales - report.rescale_shrinks, action="other")
            mx.counter(
                "load_rescale_seconds_total",
                "Simulated reload seconds paid for planned rescales",
            ).inc(report.rescale_seconds)


def run_load(config: HarnessConfig, metrics=None) -> LoadReport:
    """Convenience one-call entry point (used by the CLI and CI smoke)."""
    return LoadHarness(config, metrics=metrics).run()
