"""Seeded arrival-trace generation for the load harness.

The workload model is the production shape the ROADMAP asks for:

* **Poisson arrivals** thinned against a time-varying rate —
  a diurnal sinusoid (quiet nights, busy afternoons) times a burst
  process (short windows where the offered rate multiplies, the
  "everyone reruns their analysis after the data lands" spikes).
* **Mixed tenants and jobs** — every arrival is one tenant submitting
  one time-constrained graph job: an application from the paper's
  profile set, a graph-size scale factor, a slack fraction and a
  recurrence period, all drawn from configurable mixes.

Generation is fully deterministic: every draw comes from one
:func:`repro.utils.rng.derive_rng` stream keyed off the config seed, so
the same :class:`LoadTraceConfig` always produces a bit-identical
:class:`ArrivalTrace` (pinned by :meth:`ArrivalTrace.checksum`), across
processes and platforms.  Traces round-trip through JSONL so a generated
workload can be archived and replayed.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.job import PAPER_PROFILES
from repro.utils.rng import derive_rng
from repro.utils.units import HOURS

#: Default application mix (name -> weight); names must exist in
#: :data:`repro.core.job.PAPER_PROFILES`.  SSSP-heavy, like the paper's
#: motivation: short recurring analyses dominate arrival counts.
DEFAULT_APP_MIX = (("sssp", 0.5), ("pagerank", 0.35), ("coloring", 0.15))


@dataclass(frozen=True)
class LoadTraceConfig:
    """Knobs of the workload generator (all defaults are benchmark-sane).

    Attributes:
        seed: master seed; the trace is a pure function of this config.
        num_jobs: arrivals to generate.
        num_tenants: distinct tenant identities jobs are attributed to.
        arrivals_per_hour: mean offered rate before modulation.
        diurnal_amplitude: relative amplitude of the 24 h sinusoid
            (0 = flat, 0.6 = rate swings +-60% around the mean).
        burst_rate_multiplier: rate multiplier inside a burst window.
        burst_probability_per_hour: chance each wall-clock hour contains
            one burst window.
        burst_duration_s: length of one burst window.
        app_mix: ``(profile name, weight)`` pairs.
        scales: graph-size scale factors applied to the profile's
            execution time (mixed dataset sizes).
        slack_range: uniform range of the per-job slack fraction.
        slack_quantum: round each drawn slack fraction to the nearest
            multiple of this step (0 = continuous).  Real tenants pick
            round numbers; a nonzero quantum makes same-window arrivals
            of one (app, scale) cell genuinely identical requests — the
            duplicate-heavy regime the frontend's coalescing serves.
        periods_s: recurrence periods jobs are tagged with (drives the
            recurring-tenant phase of the harness).
    """

    seed: int = 42
    num_jobs: int = 1000
    num_tenants: int = 20
    arrivals_per_hour: float = 120.0
    diurnal_amplitude: float = 0.6
    burst_rate_multiplier: float = 4.0
    burst_probability_per_hour: float = 0.15
    burst_duration_s: float = 900.0
    app_mix: tuple[tuple[str, float], ...] = DEFAULT_APP_MIX
    scales: tuple[float, ...] = (0.25, 0.5, 1.0)
    slack_range: tuple[float, float] = (0.1, 1.0)
    slack_quantum: float = 0.0
    periods_s: tuple[float, ...] = (2 * HOURS, 4 * HOURS, 6 * HOURS)

    def __post_init__(self):
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")
        if self.arrivals_per_hour <= 0:
            raise ValueError("arrivals_per_hour must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.burst_rate_multiplier < 1.0:
            raise ValueError("burst_rate_multiplier must be >= 1")
        unknown = [name for name, _ in self.app_mix if name not in PAPER_PROFILES]
        if unknown:
            raise ValueError(f"unknown profiles in app_mix: {unknown}")
        if not self.app_mix or any(w <= 0 for _, w in self.app_mix):
            raise ValueError("app_mix needs positive weights")
        lo, hi = self.slack_range
        if not 0.0 <= lo <= hi:
            raise ValueError("slack_range must satisfy 0 <= lo <= hi")
        if self.slack_quantum < 0.0:
            raise ValueError("slack_quantum must be >= 0 (0 = continuous)")


@dataclass(frozen=True)
class TraceJob:
    """One arrival: a tenant submitting one time-constrained job.

    Attributes:
        job_id: position in the trace (0-based, arrival order).
        tenant: tenant identity (``tenant-07``).
        arrival_s: arrival time, seconds from the trace origin.
        app: application profile name (``sssp`` / ``pagerank`` / ...).
        scale: execution-time scale factor (graph-size proxy).
        slack_fraction: deadline slack as a fraction of execution time.
        period_s: the job's recurrence period tag.
    """

    job_id: int
    tenant: str
    arrival_s: float
    app: str
    scale: float
    slack_fraction: float
    period_s: float


@dataclass(frozen=True)
class ArrivalTrace:
    """A generated workload: the config that produced it plus its jobs."""

    config: LoadTraceConfig
    jobs: tuple[TraceJob, ...]

    @property
    def span_s(self) -> float:
        """Seconds from the trace origin to the last arrival."""
        return self.jobs[-1].arrival_s if self.jobs else 0.0

    def checksum(self) -> str:
        """SHA-256 over the canonical JSON encoding (bit-identity pin)."""
        payload = json.dumps(
            [asdict(job) for job in self.jobs], sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------------------------
    # JSONL round-trip (the archival trace format)
    # ------------------------------------------------------------------
    def to_jsonl(self, path) -> None:
        """Write one header line (the config) then one line per job."""
        lines = [json.dumps({"trace_config": asdict(self.config)}, sort_keys=True)]
        lines.extend(json.dumps(asdict(job), sort_keys=True) for job in self.jobs)
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def from_jsonl(cls, path) -> "ArrivalTrace":
        """Reload a trace written by :meth:`to_jsonl`."""
        lines = Path(path).read_text().splitlines()
        if not lines:
            raise ValueError(f"empty trace file: {path}")
        header = json.loads(lines[0])
        raw = header.get("trace_config")
        if raw is None:
            raise ValueError(f"missing trace_config header in {path}")
        for key in ("app_mix", "scales", "slack_range", "periods_s"):
            raw[key] = tuple(
                tuple(v) if isinstance(v, list) else v for v in raw[key]
            )
        config = LoadTraceConfig(**raw)
        jobs = tuple(TraceJob(**json.loads(line)) for line in lines[1:] if line)
        return cls(config=config, jobs=jobs)


def _in_burst(config: LoadTraceConfig, seed, t: float) -> bool:
    """Whether *t* falls inside a burst window.

    Burst placement is derived per wall-clock hour from the seed, so the
    burst schedule is a deterministic property of the config that does
    not depend on how many arrivals the thinning loop samples.
    """
    for hour in (int(t // HOURS), int(t // HOURS) - 1):
        if hour < 0:
            continue
        rng = derive_rng(seed, "burst", hour)
        if rng.uniform() >= config.burst_probability_per_hour:
            continue
        start = hour * HOURS + rng.uniform(0.0, HOURS)
        if start <= t < start + config.burst_duration_s:
            return True
    return False


def offered_rate(config: LoadTraceConfig, t: float) -> float:
    """Instantaneous arrival rate (jobs/second) at trace time *t*."""
    base = config.arrivals_per_hour / HOURS
    diurnal = 1.0 + config.diurnal_amplitude * math.sin(2.0 * math.pi * t / (24 * HOURS))
    rate = base * diurnal
    if _in_burst(config, config.seed, t):
        rate *= config.burst_rate_multiplier
    return rate


def generate_trace(config: LoadTraceConfig) -> ArrivalTrace:
    """Sample the arrival trace (deterministic in *config*).

    Arrivals come from Poisson thinning: candidate points at the peak
    rate, kept with probability ``rate(t) / peak``.  Job attributes are
    drawn from one sequential stream, so the whole trace is a pure
    function of the config.
    """
    rng = derive_rng(config.seed, "arrivals")
    peak = (
        config.arrivals_per_hour
        / HOURS
        * (1.0 + config.diurnal_amplitude)
        * config.burst_rate_multiplier
    )
    names = [name for name, _ in config.app_mix]
    total_w = sum(w for _, w in config.app_mix)
    weights = [w / total_w for _, w in config.app_mix]
    jobs: list[TraceJob] = []
    t = 0.0
    while len(jobs) < config.num_jobs:
        t += rng.exponential(1.0 / peak)
        if rng.uniform() * peak > offered_rate(config, t):
            continue
        lo, hi = config.slack_range
        slack = float(rng.uniform(lo, hi))
        if config.slack_quantum > 0.0:
            slack = min(
                hi, max(lo, config.slack_quantum * round(slack / config.slack_quantum))
            )
        jobs.append(
            TraceJob(
                job_id=len(jobs),
                tenant=f"tenant-{int(rng.integers(config.num_tenants)):02d}",
                arrival_s=t,
                app=names[int(rng.choice(len(names), p=weights))],
                scale=float(config.scales[int(rng.integers(len(config.scales)))]),
                slack_fraction=slack,
                period_s=float(
                    config.periods_s[int(rng.integers(len(config.periods_s)))]
                ),
            )
        )
    return ArrivalTrace(config=config, jobs=tuple(jobs))
