"""Frontend serving throughput: coalescing + pooling vs the single-lock path.

The serving-layer claim quantified.  The workload is the duplicate-heavy
burst the frontend was built for: many tenants submitting replicas of a
few recurring analyses at once (same estimator key, same slack cell —
identical decisions).  Three serving architectures answer the same
burst:

* **single-lock** — concurrent client threads calling ``service.plan``;
  every replica pays a full decision and the shared estimator lock
  serialises them (the pre-frontend path for live traffic).
* **windowed plan_many** — the PR 6 harness path: the burst chopped into
  sequential capacity-sized batches (no concurrency, but per-slot
  lock/telemetry churn amortised).
* **frontend** — async clients through :class:`PlanFrontend`: duplicate
  sets collapse onto one in-flight evaluation; the distinct remainder
  dispatches through the autoscaled pool.

Asserted floors (generous; the typical win is larger):

* frontend sustains at least ``MIN_SPEEDUP`` (2x) the single-lock
  path's resolved-requests/s at saturation;
* frontend arrival-to-decision p95 beats both baselines (a waiter
  resolves when its leader does, instead of queueing for its own slot);
* every duplicate receives the bit-identical decision in all paths.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.job import (
    COLORING_PROFILE,
    PAGERANK_PROFILE,
    SSSP_PROFILE,
    job_with_slack,
)
from repro.core.slack import SlackModel
from repro.experiments.report import format_table
from repro.load.report import percentile
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    FrontendConfig,
    PlanFrontend,
    PlanningService,
    PlanRequest,
    PoolConfig,
)

MIN_SPEEDUP = 2.0
REPLICAS = 60  # submissions per distinct request (the duplicate depth)
CLIENT_THREADS = 8  # concurrent callers in the single-lock baseline
WINDOW_CAPACITY = 64  # windowed baseline's plan_many batch size


def _templates(setup):
    """The distinct requests of the burst (one per recurring analysis)."""
    templates = []
    for profile in (SSSP_PROFILE, PAGERANK_PROFILE, COLORING_PROFILE):
        for slack in (0.3, 0.8):
            perf = setup.perf_model(profile)
            lrc = setup.lrc(perf)
            job = job_with_slack(profile, 0.0, slack, perf.fixed_time(lrc))
            sm = SlackModel(perf=perf, lrc=lrc, deadline=job.deadline)
            templates.append(PlanRequest(slack_model=sm, catalog=setup.catalog))
    return templates


def _burst(templates):
    """Round-robin replicas: the arrival mix of one burst window."""
    return [templates[i % len(templates)] for i in range(REPLICAS * len(templates))]


def _warm_service(setup, templates):
    """A service with every cold estimator already paid (all paths equal)."""
    service = PlanningService(setup.market)
    for request in templates:
        service.plan(request)
    return service


def _run_single_lock(setup, templates, burst):
    """Baseline: concurrent client threads on ``service.plan``."""
    service = _warm_service(setup, templates)
    latencies = [0.0] * len(burst)
    results = [None] * len(burst)

    def client(indices, t0):
        for i in indices:
            results[i] = service.plan(burst[i])
            latencies[i] = time.perf_counter() - t0

    slices = [range(k, len(burst), CLIENT_THREADS) for k in range(CLIENT_THREADS)]
    with ThreadPoolExecutor(CLIENT_THREADS) as pool:
        t0 = time.perf_counter()
        futures = [pool.submit(client, s, t0) for s in slices]
        for future in futures:
            future.result()
        span = time.perf_counter() - t0
    return span, latencies, results


def _run_windowed(setup, templates, burst):
    """Baseline: the burst chopped into sequential plan_many windows."""
    service = _warm_service(setup, templates)
    latencies = []
    results = []
    t0 = time.perf_counter()
    for start in range(0, len(burst), WINDOW_CAPACITY):
        batch = burst[start : start + WINDOW_CAPACITY]
        results.extend(service.plan_many(batch))
        done = time.perf_counter() - t0
        latencies.extend([done] * len(batch))  # burst arrival at t0
    span = time.perf_counter() - t0
    return span, latencies, results


def _run_frontend(setup, templates, burst):
    """The async frontend over an autoscaled 1:4 pool, coalescing on."""
    service = _warm_service(setup, templates)
    frontend = PlanFrontend(
        service,
        FrontendConfig(
            max_inflight=len(burst),
            max_batch=WINDOW_CAPACITY,
            pool=PoolConfig(min_workers=1, max_workers=4),
        ),
        metrics=MetricsRegistry(),
    )
    latencies = []

    async def submit(request, t0):
        result = await frontend.plan(request)
        latencies.append(time.perf_counter() - t0)
        return result

    async def drive():
        async with frontend:
            t0 = time.perf_counter()
            results = await asyncio.gather(
                *(submit(request, t0) for request in burst)
            )
            span = time.perf_counter() - t0
            return span, results, frontend.stats()

    span, results, stats = asyncio.run(drive())
    return span, latencies, results, stats


def _check_identical_decisions(templates, burst, results):
    """Every replica of one template decided identically; returns the map."""
    decisions = {}
    for request, result in zip(burst, results):
        seen = decisions.setdefault(id(request), result.decision)
        assert result.decision == seen
    assert len(decisions) == len(templates)
    return decisions


def test_frontend_throughput_at_saturation(setup, save_result):
    templates = _templates(setup)
    burst = _burst(templates)

    lock_span, lock_lat, lock_results = _run_single_lock(setup, templates, burst)
    win_span, win_lat, win_results = _run_windowed(setup, templates, burst)
    fe_span, fe_lat, fe_results, stats = _run_frontend(setup, templates, burst)

    # Correctness before speed: per template one decision, identical
    # across replicas AND across serving architectures.
    lock_decisions = _check_identical_decisions(templates, burst, lock_results)
    win_decisions = _check_identical_decisions(templates, burst, win_results)
    fe_decisions = _check_identical_decisions(templates, burst, fe_results)
    assert fe_decisions == win_decisions == lock_decisions

    # The duplicate-heavy burst actually coalesced (not just got faster).
    assert stats.coalesced >= 0.8 * (len(burst) - len(templates))

    rps = {
        "single-lock": len(burst) / lock_span,
        "windowed": len(burst) / win_span,
        "frontend": len(burst) / fe_span,
    }
    p95 = {
        "single-lock": 1000 * percentile(lock_lat, 95),
        "windowed": 1000 * percentile(win_lat, 95),
        "frontend": 1000 * percentile(fe_lat, 95),
    }
    spans = {"single-lock": lock_span, "windowed": win_span, "frontend": fe_span}
    speedup = rps["frontend"] / rps["single-lock"]

    save_result(
        "frontend_throughput",
        format_table(
            [
                {
                    "path": name,
                    "requests": len(burst),
                    "span_ms": round(1000 * spans[name], 1),
                    "plans_per_s": round(rps[name]),
                    "p95_ms": round(p95[name], 2),
                    "coalesced": stats.coalesced if name == "frontend" else 0,
                }
                for name in ("single-lock", "windowed", "frontend")
            ],
            title=(
                "Serving throughput — duplicate-heavy burst "
                f"({len(templates)} distinct x {REPLICAS} replicas)"
            ),
        ),
    )

    assert speedup >= MIN_SPEEDUP, (
        f"frontend only {speedup:.2f}x the single-lock path "
        f"({rps['frontend']:.0f} vs {rps['single-lock']:.0f} plans/s, "
        f"floor {MIN_SPEEDUP}x)"
    )
    assert p95["frontend"] <= p95["single-lock"], (
        f"frontend p95 {p95['frontend']:.1f} ms worse than single-lock "
        f"{p95['single-lock']:.1f} ms"
    )
    assert p95["frontend"] <= p95["windowed"], (
        f"frontend p95 {p95['frontend']:.1f} ms worse than windowed "
        f"{p95['windowed']:.1f} ms"
    )
