"""Regenerates Figure 9: decision time of exact vs approximate EC.

Paper shape: the exact formulation only finishes for the short job at
small slacks (everything else DNFs after >1 h — here: a state budget),
while the approximation answers in milliseconds with a small distance
from optimum (paper: ~3 % average).
"""

from __future__ import annotations

from repro.experiments import fig9_decision_time

SLACKS = (0.1, 0.3, 0.5, 0.7, 1.0)


def test_fig9_decision_time(benchmark, setup, save_result):
    cells = benchmark.pedantic(
        fig9_decision_time.run,
        kwargs={
            "setup": setup,
            "slacks": SLACKS,
            "exact_dt": 30.0,
            "exact_budget": 300_000,
        },
        rounds=1,
        iterations=1,
    )
    save_result("fig9_decision_time", fig9_decision_time.render(cells))

    # The approximation always answers, quickly.
    for cell in cells:
        assert cell.approx_ms < 5_000

    # The exact estimator DNFs somewhere (the paper's GC column).
    coloring = [c for c in cells if c.app == "coloring"]
    assert any(c.exact_ms is None for c in coloring)

    # Where exact finishes, the approximation lands close (paper: ~3%).
    finished = [c for c in cells if c.dfo_percent is not None]
    assert finished, "at least one exact cell must finish"
    mean_dfo = sum(c.dfo_percent for c in finished) / len(finished)
    assert mean_dfo < 40.0

    # Exact is orders of magnitude slower than the approximation.
    slow = [c for c in finished if c.exact_ms is not None and c.exact_ms > 0]
    if slow:
        assert max(c.exact_ms / max(c.approx_ms, 1e-3) for c in slow) > 2.0
