"""Regenerates Figure 1: the provisioning dilemma (GC, 6-hour period).

Paper reference points (normalized cost / missed deadlines):
eager 0.37 / 79 %; Hourglass-Naive 0.77 / 0 %; Slack-Aware 0.57 / 0 %;
Slack-Aware + Fast Reload 0.37 / 0 %.
"""

from __future__ import annotations

from repro.experiments import fig1_motivation

NUM_SIMULATIONS = 25


def test_fig1_motivation(benchmark, setup, save_result):
    results = benchmark.pedantic(
        fig1_motivation.run,
        kwargs={"setup": setup, "num_simulations": NUM_SIMULATIONS},
        rounds=1,
        iterations=1,
    )
    save_result("fig1_motivation", fig1_motivation.render(results))

    by_name = {r.strategy: r for r in results}
    eager = by_name["eager"]
    naive = by_name["hourglass-naive"]
    slack_aware = by_name["slack-aware"]
    full = by_name["slack-aware+fast-reload"]

    # Shape assertions from the paper's Figure 1.
    assert eager.missed_percent > 30, "eager must miss deadlines often"
    assert naive.missed_percent == 0
    assert slack_aware.missed_percent == 0
    assert full.missed_percent == 0
    assert eager.normalized_cost < 0.6, "eager achieves large savings"
    assert full.normalized_cost < naive.normalized_cost, (
        "full Hourglass beats the naive DP fallback"
    )
    assert full.normalized_cost <= slack_aware.normalized_cost + 0.05, (
        "fast reload must not hurt the slack-aware strategy"
    )
    assert full.normalized_cost < 0.6, "full Hourglass achieves ~60% savings"
