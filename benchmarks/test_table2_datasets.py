"""Regenerates Table 2: the dataset catalogue with repro-scale stand-ins."""

from __future__ import annotations

from repro.experiments import table2_datasets


def test_table2_datasets(benchmark, save_result):
    rows = benchmark.pedantic(
        table2_datasets.run, kwargs={"seed": 42}, rounds=1, iterations=1
    )
    save_result("table2_datasets", table2_datasets.render(rows))

    by_name = {r["dataset"]: r for r in rows}
    # Paper-scale numbers straight out of Table 2.
    assert by_name["twitter"]["paper_V"] == 52_579_678
    assert by_name["twitter"]["paper_E"] == 1_614_106_187
    assert by_name["orkut"]["paper_E"] == 117_185_083
    assert by_name["human-gene"]["paper_V"] == 22_283
    assert by_name["rmat-24"]["paper_E"] == 1 << 28

    # Stand-ins generated and topologically sane (social graphs skewed).
    for row in rows:
        assert row["repro_E"] > 0
    assert by_name["twitter"]["degree_gini"] > by_name["human-gene"]["degree_gini"] - 0.4
