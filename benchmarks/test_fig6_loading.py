"""Regenerates Figure 6: loading times of Stream/Hash/Micro loaders.

Paper shape: the micro loader is 10-80x faster than the stream loader
and 3-65x faster than the hash loader, with the gap growing with the
dataset size; the hash loader suffers most at small machine counts.
"""

from __future__ import annotations

from repro.experiments import fig6_loading


def test_fig6_loading(benchmark, save_result):
    cells = benchmark.pedantic(fig6_loading.run, rounds=1, iterations=1)
    save_result("fig6_loading", fig6_loading.render(cells))

    by_key = {(c.dataset, c.strategy, c.machines): c.seconds for c in cells}
    for dataset in fig6_loading.DATASETS:
        for machines in fig6_loading.MACHINE_COUNTS:
            micro = by_key[(dataset, "micro", machines)]
            hashed = by_key[(dataset, "hash", machines)]
            stream = by_key[(dataset, "stream", machines)]
            assert micro < hashed < stream

    speedups = {r["dataset"]: r for r in fig6_loading.speedups(cells)}
    # Biggest dataset shows the biggest micro advantage (paper: 79.6x).
    assert speedups["twitter"]["micro_vs_stream"] > 40
    assert speedups["orkut"]["micro_vs_stream"] > 5
    assert (
        speedups["twitter"]["micro_vs_stream"]
        > speedups["orkut"]["micro_vs_stream"]
    )
    # Hash is better than stream but still an order behind micro on the
    # largest graphs.
    assert speedups["twitter"]["micro_vs_hash"] > 5


def test_fig6_functional_loaders(benchmark):
    """The actual loader implementations agree with the model's ordering."""
    from repro.engine.loader import HashLoader, MicroLoader, StreamLoader
    from repro.graph.datasets import get_dataset
    from repro.partitioning import FennelPartitioner, MicroPartitioner

    graph = get_dataset("orkut").generate(seed=42)
    artefact = MicroPartitioner(num_micro_parts=16).build(graph, seed=1)

    def load_all():
        return (
            StreamLoader(FennelPartitioner()).load(graph, 4, seed=1),
            HashLoader().load(graph, 4),
            MicroLoader(artefact).load(graph, 4, seed=1),
        )

    stream, hashed, micro = benchmark.pedantic(load_all, rounds=1, iterations=1)
    assert micro.simulated_seconds < hashed.simulated_seconds
    assert hashed.simulated_seconds < stream.simulated_seconds
    for result in (stream, hashed, micro):
        assert result.partitioning.num_parts == 4
