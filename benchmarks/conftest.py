"""Benchmark fixtures: shared experiment setup and result persistence.

Every benchmark regenerates one paper table/figure, prints the rows the
paper reports and writes them under ``benchmarks/results/`` so
EXPERIMENTS.md can reference a stable artefact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentSetup

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    """The shared seeded market/catalogue for all simulation benchmarks."""
    return ExperimentSetup(seed=42, trace_days=30)


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, rendered: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        print(f"\n{rendered}\n")

    return _save
