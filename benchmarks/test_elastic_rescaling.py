"""Regenerates the elastic-vs-static rescaling sweep.

Expected shape: on a frontier-collapsing SSSP job the ``elastic``
strategy (frontier-scaled work accounting + DP-vetted mid-job moves)
never misses a deadline and is on average cheaper than the static
``hourglass`` arm, with planned shrinks appearing at generous slacks
where there is room for conservative late-job moves.
"""

from __future__ import annotations

from repro.experiments import fig_elastic

SLACKS = (0.2, 0.4, 0.6, 0.8, 1.0)
NUM_SIMULATIONS = 10


def test_elastic_rescaling(benchmark, setup, save_result):
    results = benchmark.pedantic(
        fig_elastic.run,
        kwargs={"setup": setup, "slacks": SLACKS, "num_simulations": NUM_SIMULATIONS},
        rounds=1,
        iterations=1,
    )
    save_result("fig_elastic", fig_elastic.render(results))

    # The module's own cross-cell claims: elastic never misses, and its
    # mean normalised cost does not exceed static's.
    assert fig_elastic.check_invariants(results) == []

    elastic = [r for r in results if r.strategy == "elastic"]
    static = [r for r in results if r.strategy == "hourglass"]
    assert len(elastic) == len(static) == len(SLACKS)

    # At least one slack produces planned shrinks, and every planned
    # move that charged reload time also counted a rescale.
    assert any(r.mean_shrinks > 0 for r in elastic)
    for r in elastic:
        if r.mean_rescale_seconds > 0:
            assert r.mean_rescales > 0

    # The static arm never rescales — the counters stay dark.
    for r in static:
        assert r.mean_rescales == 0
        assert r.mean_rescale_seconds == 0
