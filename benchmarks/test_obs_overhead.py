"""Observability overhead benchmark: tracing off must be ~free.

Two hot paths carry an ``if tracer.enabled`` guard per event:

* the engine superstep loop (``PregelEngine.step``), measured against a
  guard-free bypass that calls the dense step directly;
* the planning-service decision path (``PlanningService.plan``), run
  with tracing disabled and enabled.

Disabled-mode overhead on the superstep path must stay under
``MAX_OFF_OVERHEAD`` (2%) — the guard is one attribute read and branch,
so a regression here means instrumentation leaked into the hot loop.
Enabled-mode numbers are informational (tracing buys its records with
real work).
"""

from __future__ import annotations

import time

from repro.engine import PregelEngine
from repro.engine.algorithms import PageRank
from repro.graph import generators
from repro.obs.state import tracing
from repro.service.planning import PlanningService, PlanRequest

NUM_VERTICES = 20_000
AVG_DEGREE = 8
ITERATIONS = 10
REPEATS = 5
NUM_DECISIONS = 300
MAX_OFF_OVERHEAD = 0.02


def _time_engine_run(graph, use_step: bool) -> tuple[float, int]:
    """Best-of-REPEATS seconds for one full PageRank run.

    ``use_step=True`` goes through the instrumented ``step()`` (one
    tracer branch per superstep); ``use_step=False`` calls the dense
    step directly — the guard-free baseline.
    """
    best = float("inf")
    supersteps = 0
    for _ in range(REPEATS):
        engine = PregelEngine(graph, PageRank(iterations=ITERATIONS))
        t0 = time.perf_counter()
        if use_step:
            while engine.step():
                pass
        else:
            while engine._step_dense():
                pass
        best = min(best, time.perf_counter() - t0)
        supersteps = engine.superstep
    return best, supersteps


def _slack_model(setup):
    from repro.core.job import PAGERANK_PROFILE, job_with_slack
    from repro.core.slack import SlackModel

    perf = setup.perf_model(PAGERANK_PROFILE)
    lrc = setup.lrc(perf)
    job = job_with_slack(PAGERANK_PROFILE, 0.0, 0.5, perf.fixed_time(lrc))
    return SlackModel(perf=perf, lrc=lrc, deadline=job.deadline)


def _time_decisions(setup, slack_model) -> float:
    """Best-of-REPEATS seconds for NUM_DECISIONS warm plan() calls."""
    service = PlanningService(setup.market)
    request = PlanRequest(slack_model=slack_model, catalog=setup.catalog)
    service.plan(request)  # pay the cold build once, outside the clock
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(NUM_DECISIONS):
            service.plan(request)
        best = min(best, time.perf_counter() - t0)
    return best


def test_obs_overhead(setup, save_result):
    graph = generators.random_graph(NUM_VERTICES, avg_degree=AVG_DEGREE, seed=7)

    bypass_s, supersteps = _time_engine_run(graph, use_step=False)
    off_s, _ = _time_engine_run(graph, use_step=True)
    with tracing():
        on_s, _ = _time_engine_run(graph, use_step=True)
    off_overhead = off_s / bypass_s - 1.0

    slack_model = _slack_model(setup)
    dec_off_s = _time_decisions(setup, slack_model)
    with tracing():
        dec_on_s = _time_decisions(setup, slack_model)

    rendered = "\n".join(
        [
            "observability overhead: tracing disabled vs enabled",
            f"supersteps/s (PageRank, {NUM_VERTICES:,} vertices, "
            f"{supersteps} supersteps, best of {REPEATS}):",
            f"  guard-free bypass : {supersteps / bypass_s:10.2f} ({bypass_s:.4f}s)",
            f"  tracing off       : {supersteps / off_s:10.2f} ({off_s:.4f}s)"
            f"   [{off_overhead * 100:+.2f}% vs bypass]",
            f"  tracing on        : {supersteps / on_s:10.2f} ({on_s:.4f}s)",
            f"decisions/s (warm planning service, {NUM_DECISIONS} decisions, "
            f"best of {REPEATS}):",
            f"  tracing off       : {NUM_DECISIONS / dec_off_s:10.2f} "
            f"({dec_off_s:.4f}s)",
            f"  tracing on        : {NUM_DECISIONS / dec_on_s:10.2f} "
            f"({dec_on_s:.4f}s)",
        ]
    )
    save_result("obs_overhead", rendered)

    assert off_overhead < MAX_OFF_OVERHEAD, (
        f"disabled-mode tracing costs {off_overhead * 100:.2f}% on the "
        f"superstep path (budget {MAX_OFF_OVERHEAD * 100:.0f}%)"
    )
