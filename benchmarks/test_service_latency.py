"""Planning-service latency: cold vs warm decisions, batched throughput.

The multi-tenant story quantified: the first request for a (catalogue,
performance-model) key pays estimator construction plus the cold DP;
every later request — a recurring execution, or another tenant with the
same fingerprint — decides from the warm memo and a shared market
snapshot.  ``plan_many`` amortises further by grouping same-key requests
under one lock pass.

Asserted floors (generous; typical wins are much larger):

* warm decision latency at least 2x better than cold, per Fig 9 cell;
* ``plan_many`` over a same-key batch at least 2x the throughput of
  answering each request on a fresh single-tenant service.
"""

from __future__ import annotations

import time

from repro.core.job import (
    COLORING_PROFILE,
    PAGERANK_PROFILE,
    SSSP_PROFILE,
    job_with_slack,
)
from repro.core.perfmodel import RELOAD_MICRO
from repro.core.slack import SlackModel
from repro.experiments.report import format_table
from repro.service import PlanningService, PlanRequest

PROFILES = {
    "sssp": SSSP_PROFILE,
    "pagerank": PAGERANK_PROFILE,
    "coloring": COLORING_PROFILE,
}
SLACKS = (0.1, 0.5, 1.0)
MIN_WARM_SPEEDUP = 2.0
MIN_BATCH_SPEEDUP = 2.0


def _slack_model(setup, profile, slack):
    perf = setup.perf_model(profile, RELOAD_MICRO)
    lrc = setup.lrc(perf)
    job = job_with_slack(profile, 0.0, slack, perf.fixed_time(lrc))
    return SlackModel(perf=perf, lrc=lrc, deadline=job.deadline)


def test_cold_vs_warm_decision_latency(setup, save_result):
    """Warm-cache decisions beat cold ones on every Fig 9 cell."""
    rows = []
    speedups = []
    for app, profile in PROFILES.items():
        for slack in SLACKS:
            sm = _slack_model(setup, profile, slack)
            service = PlanningService(setup.market)
            request = PlanRequest(slack_model=sm, catalog=setup.catalog)
            cold = service.plan(request)
            # Median of repeated warm requests: single-shot timings at
            # the ~100 µs scale are scheduler noise.
            warm_times = []
            for _ in range(20):
                warm = service.plan(request)
                assert warm.decision == cold.decision
                warm_times.append(warm.telemetry.latency_s)
            warm_s = sorted(warm_times)[len(warm_times) // 2]
            speedup = cold.telemetry.latency_s / warm_s
            speedups.append(speedup)
            rows.append(
                {
                    "app": app,
                    "slack%": int(round(100 * slack)),
                    "cold_ms": round(1000 * cold.telemetry.latency_s, 3),
                    "warm_ms": round(1000 * warm_s, 3),
                    "speedup": round(speedup, 1),
                }
            )
    save_result(
        "service_latency",
        format_table(
            rows, title="Planning service — cold vs warm decision latency"
        ),
    )
    worst = min(speedups)
    assert worst >= MIN_WARM_SPEEDUP, (
        f"warm decisions only {worst:.2f}x faster than cold "
        f"(floor {MIN_WARM_SPEEDUP}x)"
    )


def test_plan_many_batched_throughput(setup, save_result):
    """Batched same-key planning beats fresh one-at-a-time services.

    The scenario the service exists for: N tenants running replicas of
    one recurring job, all at decision points at time *t* with different
    amounts of work left.  Grids are pinned (as a provisioner session
    would) so every request lands in one estimator key; the batch then
    takes one market snapshot and walks one warm memo, while the
    one-at-a-time baseline pays a cold estimator per request.
    """
    sm = _slack_model(setup, PAGERANK_PROFILE, 0.5)
    grids = PlanningService(setup.market).resolved_grids(sm, 0.0, 1.0)
    requests = [
        PlanRequest(
            slack_model=sm,
            catalog=setup.catalog,
            t=1800.0,
            work_left=1.0 - 0.01 * i,
            slack_grid=grids[0],
            work_grid=grids[1],
        )
        for i in range(60)
    ]

    t0 = time.perf_counter()
    one_at_a_time = [
        PlanningService(setup.market).plan(request) for request in requests
    ]
    solo_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = PlanningService(setup.market).plan_many(requests)
    batch_s = time.perf_counter() - t0

    assert [r.decision for r in batched] == [r.decision for r in one_at_a_time]
    speedup = solo_s / batch_s
    save_result(
        "service_throughput",
        format_table(
            [
                {
                    "requests": len(requests),
                    "one_at_a_time_ms": round(1000 * solo_s, 1),
                    "plan_many_ms": round(1000 * batch_s, 1),
                    "speedup": round(speedup, 1),
                }
            ],
            title="Planning service — plan_many batched throughput",
        ),
    )
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"plan_many only {speedup:.2f}x faster than one-at-a-time "
        f"(floor {MIN_BATCH_SPEEDUP}x)"
    )
