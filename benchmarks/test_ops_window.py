"""Windowed-aggregation overhead benchmark: sampling must not slow writers.

The live-operations layer claims *lock-free per writer*: metric writers
only ever touch their own per-metric locks, and the windowed sampler
copies snapshots without blocking instrumentation sites.  This
benchmark hammers one counter + one histogram from the writer side

* alone (the baseline), and
* with a :class:`~repro.obs.window.SamplerThread` sampling the registry
  at a 50 ms interval plus an :class:`~repro.obs.slo.SloMonitor`
  evaluating after every sample — 10x hotter than the 0.5 s
  production cadence,

and reports the writer-side slowdown.  It must stay under
``MAX_SAMPLING_OVERHEAD`` (2%), mirroring the tracing-off budget of
``test_obs_overhead.py``.  Windowed read costs (sample, quantile, SLO
evaluation pass) are reported informationally.
"""

from __future__ import annotations

import time

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloMonitor, default_slos
from repro.obs.window import SamplerThread, WindowConfig, WindowedAggregator

WRITES = 200_000
REPEATS = 5
SAMPLE_INTERVAL = 0.05
MAX_SAMPLING_OVERHEAD = 0.02


def _write_loop(registry: MetricsRegistry) -> float:
    """Seconds for WRITES counter-inc + histogram-observe pairs."""
    counter = registry.counter("load_runs_total", "bench writes")
    histogram = registry.histogram("load_plan_latency_seconds", "bench writes")
    t0 = time.perf_counter()
    for i in range(WRITES):
        counter.inc(1, outcome="met" if i % 10 else "missed")
        histogram.observe(0.001 * (i % 100))
    return time.perf_counter() - t0


def _best(fn, *args) -> float:
    return min(fn(*args) for _ in range(REPEATS))


def test_ops_window_overhead(save_result):
    baseline_s = _best(_write_loop, MetricsRegistry())

    registry = MetricsRegistry()
    aggregator = WindowedAggregator(registry, WindowConfig(interval=SAMPLE_INTERVAL))
    monitor = SloMonitor(aggregator, default_slos(), metrics=registry)
    with SamplerThread(aggregator, SAMPLE_INTERVAL, on_sample=(monitor.evaluate,)):
        sampled_s = _best(_write_loop, registry)
    overhead = sampled_s / baseline_s - 1.0

    # Read-side costs, informational: one registry snapshot, one
    # windowed quantile, one full SLO evaluation pass.
    t0 = time.perf_counter()
    aggregator.sample()
    sample_ms = 1000 * (time.perf_counter() - t0)
    t0 = time.perf_counter()
    aggregator.quantile("load_plan_latency_seconds", 0.99, 10.0)
    quantile_ms = 1000 * (time.perf_counter() - t0)
    t0 = time.perf_counter()
    monitor.evaluate()
    evaluate_ms = 1000 * (time.perf_counter() - t0)

    rendered = "\n".join(
        [
            "windowed aggregation: writer-side overhead while sampling",
            f"writes/s ({WRITES:,} inc+observe pairs, best of {REPEATS}):",
            f"  sampler off : {WRITES / baseline_s:12.0f} ({baseline_s:.4f}s)",
            f"  sampler on  : {WRITES / sampled_s:12.0f} ({sampled_s:.4f}s)"
            f"   [{overhead * 100:+.2f}% vs off, {SAMPLE_INTERVAL * 1000:.0f} ms interval]",
            "read-side costs (informational):",
            f"  registry sample    : {sample_ms:8.3f} ms",
            f"  windowed p99       : {quantile_ms:8.3f} ms",
            f"  SLO evaluation pass: {evaluate_ms:8.3f} ms "
            f"({monitor.evaluations} evaluations total)",
        ]
    )
    save_result("ops_window_overhead", rendered)

    assert overhead < MAX_SAMPLING_OVERHEAD, (
        f"concurrent sampling costs writers {overhead * 100:.2f}% "
        f"(budget {MAX_SAMPLING_OVERHEAD * 100:.0f}%)"
    )
