"""Engine micro-benchmark: supersteps/sec, seed dict engine vs vectorized.

The seed engine stored vertex values/halted flags in per-vertex Python
dicts and delivered messages one ``deliver()`` call at a time; this file
keeps a faithful replica of that hot path (``_SeedDictEngine``) and runs
the same 50k-vertex PageRank job on it and on the array-native engine.
The vectorized engine must be at least 5x faster while producing
identical final vertex values.
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from repro.engine import PregelEngine
from repro.engine.algorithms import PageRank
from repro.engine.vertex import ComputeContext
from repro.graph import generators

NUM_VERTICES = 50_000
AVG_DEGREE = 8
ITERATIONS = 3
MIN_SPEEDUP = 5.0


class _SeedDictEngine:
    """Replica of the seed engine's superstep loop (single worker).

    Per-vertex dict state, per-message delivery with eager scalar
    combining — the exact interpreter-bound path the vectorized engine
    replaced.  Kept here so the benchmark keeps measuring the real
    before/after even as the engine evolves.
    """

    def __init__(self, graph, program):
        self.graph = graph
        self.program = program
        n = graph.num_vertices
        self.values = {v: program.initial_value(v, n) for v in range(n)}
        self.halted = {v: not program.is_active_initially(v) for v in range(n)}
        self.incoming: dict[int, list] = defaultdict(list)
        self.superstep = 0
        self._prev_aggregates: dict = {}

    def step(self) -> bool:
        program, graph = self.program, self.graph
        combiner = program.combiner
        aggregators = {
            name: factory() for name, factory in program.aggregators().items()
        }
        ctx = ComputeContext()
        ctx.superstep = self.superstep
        ctx.num_vertices = graph.num_vertices
        ctx._aggregators = aggregators
        ctx._prev_aggregates = self._prev_aggregates

        incoming = self.incoming
        outgoing: dict[int, list] = defaultdict(list)
        send_buffer: dict[int, list] = {}
        for v in range(graph.num_vertices):
            has_messages = v in incoming
            if self.halted[v] and not has_messages:
                continue
            self.halted[v] = False
            ctx.vertex_id = v
            ctx.value = self.values[v]
            ctx._out_edges = graph.neighbors(v)
            ctx._out_weights = graph.edge_weights(v)
            ctx._outbox = []
            ctx._halted = False
            program.compute(ctx, incoming[v] if has_messages else [])
            self.values[v] = ctx.value
            self.halted[v] = ctx._halted
            for dst, msg in ctx._outbox:
                slot = send_buffer.get(dst)
                if slot is None:
                    send_buffer[dst] = [msg]
                elif combiner is not None:
                    slot[0] = combiner.combine(slot[0], msg)
                else:
                    slot.append(msg)
        for dst, msgs in send_buffer.items():
            for msg in msgs:
                bucket = outgoing[dst]
                if combiner is not None and bucket:
                    bucket[0] = combiner.combine(bucket[0], msg)
                else:
                    bucket.append(msg)
        self._prev_aggregates = {name: a.value for name, a in aggregators.items()}
        self.incoming = outgoing
        self.superstep += 1
        return bool(outgoing) or any(not h for h in self.halted.values())

    def run(self):
        while self.step():
            pass

    def values_array(self) -> np.ndarray:
        return np.array([self.values[v] for v in range(self.graph.num_vertices)])


def test_engine_throughput(save_result):
    graph = generators.random_graph(NUM_VERTICES, avg_degree=AVG_DEGREE, seed=7)

    seed_engine = _SeedDictEngine(graph, PageRank(iterations=ITERATIONS))
    t0 = time.perf_counter()
    seed_engine.run()
    seed_elapsed = time.perf_counter() - t0
    seed_rate = seed_engine.superstep / seed_elapsed

    engine = PregelEngine(graph, PageRank(iterations=ITERATIONS))
    t0 = time.perf_counter()
    result = engine.run()
    fast_elapsed = time.perf_counter() - t0
    fast_rate = result.supersteps_run / fast_elapsed

    speedup = fast_rate / seed_rate
    rendered = "\n".join(
        [
            "engine throughput: PageRank "
            f"({NUM_VERTICES:,} vertices, avg degree {AVG_DEGREE}, "
            f"{ITERATIONS} iterations, {result.supersteps_run} supersteps)",
            f"  seed dict engine : {seed_rate:8.2f} supersteps/s "
            f"({seed_elapsed:.3f}s)",
            f"  vectorized engine: {fast_rate:8.2f} supersteps/s "
            f"({fast_elapsed:.3f}s)",
            f"  speedup          : {speedup:8.2f}x",
        ]
    )
    save_result("engine_throughput", rendered)

    assert result.supersteps_run == seed_engine.superstep
    # Identical final values: same summation order (single worker), so
    # the runs must agree bit for bit, not merely approximately.
    assert np.array_equal(result.values_array(), seed_engine.values_array())
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized engine only {speedup:.1f}x faster (need >= {MIN_SPEEDUP}x)"
    )
