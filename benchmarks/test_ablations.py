"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these probe the sensitivity of Hourglass's design
parameters: the Daly checkpoint interval, the micro-partition count, and
the §9 eviction-warning extension.
"""

from __future__ import annotations

from repro.experiments import ablations


def test_ablation_checkpoint_interval(benchmark, setup, save_result):
    rows = benchmark.pedantic(
        ablations.checkpoint_interval_ablation,
        kwargs={"setup": setup, "num_simulations": 8},
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_checkpoint_interval",
        ablations.render(rows, "Ablation — checkpoint interval vs Daly optimum (GC, 50% slack)"),
    )
    by_scale = {r["interval_scale"]: r for r in rows}
    # Hourglass never misses regardless of the interval choice (the
    # slack model caps segments independently).
    assert all(r["missed%"] == 0 for r in rows)
    # Daly's optimum stays within simulation noise of the best choice
    # and clearly beats gross under-checkpointing.
    best = min(r["norm_cost"] for r in rows)
    assert by_scale[1.0]["norm_cost"] <= best + 0.15
    worst = max(r["norm_cost"] for r in rows)
    assert by_scale[1.0]["norm_cost"] <= worst


def test_ablation_micro_count(benchmark, save_result):
    rows = benchmark.pedantic(
        ablations.micro_count_ablation, kwargs={"seed": 42}, rounds=1, iterations=1
    )
    save_result(
        "ablation_micro_count",
        ablations.render(rows, "Ablation — micro-partition count vs clustering quality"),
    )
    by_count = {r["micro_parts"]: r for r in rows}
    # More shards -> bigger quotient graphs (more online clustering work).
    assert by_count[256]["quotient_edges"] > by_count[16]["quotient_edges"]
    # Quality headroom improves (or holds) as the shard count grows.
    assert by_count[256]["micro_cut%"] <= by_count[16]["micro_cut%"] + 1.0
    # Even 16 shards stay in the same regime as the direct partitioner.
    assert by_count[64]["micro_cut%"] < by_count[64]["direct_cut%"] + 15.0


def test_ablation_phase_skew(benchmark, setup, save_result):
    """Footnote 2 made concrete: the deadline guarantee needs an honest
    progress metric.  With phases skewed against the uniform-pace model,
    time-based work accounting preserves zero misses while naive raw
    accounting breaks the guarantee."""
    rows = benchmark.pedantic(
        ablations.phase_skew_ablation,
        kwargs={"setup": setup, "num_simulations": 8},
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_phase_skew",
        ablations.render(rows, "Ablation — phase skew vs work accounting (GC, 20% slack)"),
    )
    by_mode = {r["accounting"]: r for r in rows}
    assert by_mode["time"]["missed%"] == 0
    assert by_mode["raw"]["missed%"] > 0


def test_ablation_warning(benchmark, setup, save_result):
    rows = benchmark.pedantic(
        ablations.warning_ablation,
        kwargs={"setup": setup, "num_simulations": 8},
        rounds=1,
        iterations=1,
    )
    save_result(
        "ablation_warning",
        ablations.render(rows, "Ablation — eviction warning lead (eager strategy, GC)"),
    )
    base = rows[0]
    warned = rows[-1]
    assert base["warning_s"] == 0
    # A warning can only help (cost and losses shrink or hold).
    assert warned["norm_cost"] <= base["norm_cost"] * 1.05
