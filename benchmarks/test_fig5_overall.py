"""Regenerates Figure 5: the 30-scenario comparison with the state of the art.

Paper shape: Hourglass misses no deadline in any cell and its cost
approaches (short jobs: beats) the deadline-oblivious greedy systems;
Proteus/SpotOn miss heavily on the 4-hour GC job; the +DP variants meet
deadlines but save little at small slacks.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig5_overall

SLACKS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
SIMULATIONS = {"sssp": 25, "pagerank": 25, "coloring": 10}


@pytest.mark.parametrize("app", ["sssp", "pagerank", "coloring"])
def test_fig5_overall(benchmark, setup, save_result, app):
    results = benchmark.pedantic(
        fig5_overall.run,
        kwargs={
            "setup": setup,
            "apps": (app,),
            "slacks": SLACKS,
            "num_simulations": SIMULATIONS[app],
        },
        rounds=1,
        iterations=1,
    )
    save_result(f"fig5_overall_{app}", fig5_overall.render(results))

    # Hard invariants: deadline-safe strategies never miss.
    assert fig5_overall.check_invariants(results) == []

    hourglass = [r for r in results if r.strategy == "hourglass"]
    greedy = [r for r in results if r.strategy in ("spoton", "proteus")]

    # Hourglass always saves versus on-demand.
    for cell in hourglass:
        assert cell.normalized_cost < 1.0

    if app == "coloring":
        # Long jobs: greedy strategies miss deadlines at small slack.
        low_slack_greedy = [c for c in greedy if c.slack_percent <= 30]
        assert max(c.missed_percent for c in low_slack_greedy) > 20
        # Savings grow with slack for Hourglass.
        by_slack = {c.slack_percent: c.normalized_cost for c in hourglass}
        assert by_slack[100] < by_slack[10]
    if app == "sssp":
        # Short jobs: fast reload makes Hourglass the cheapest strategy.
        for slack in (10, 50, 100):
            hg = next(c for c in hourglass if c.slack_percent == slack)
            for g in greedy:
                if g.slack_percent == slack:
                    assert hg.normalized_cost <= g.normalized_cost + 0.02
