"""Load-harness benchmark: latency percentiles and miss rates at scale.

Runs the seeded multi-tenant trace end to end (admission, batch
planning, execution, interleaved recurring tenants) and records the
numbers the harness exists to measure: plan-latency p50/p95/p99, queue
wait, cache hit rate, deadline-miss and window-violation rates, and the
three Granny-style costs.  The table lands in
``benchmarks/results/load_harness.txt``.

Assertions are sanity floors, not performance gates — the CI benchmarks
job is non-blocking and machines vary.  The deterministic fingerprint is
asserted exactly: simulated outcomes must not depend on the machine.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.load import HarnessConfig, LoadHarness, LoadTraceConfig
from repro.obs.metrics import MetricsRegistry

JOBS = 400
SEED = 42


def _run():
    config = HarnessConfig(
        trace=LoadTraceConfig(seed=SEED, num_jobs=JOBS, num_tenants=20),
        trace_days=14,
        recurring_tenants=4,
        recurring_periods=6,
    )
    return LoadHarness(config, metrics=MetricsRegistry()).run()


def test_load_harness_percentiles(save_result):
    """One seeded trace; record percentiles, rates and costs."""
    report = _run()
    rows = [
        {
            "jobs": report.num_jobs,
            "planned": report.planned,
            "plan_p50_ms": round(report.plan_p50_ms, 3),
            "plan_p95_ms": round(report.plan_p95_ms, 3),
            "plan_p99_ms": round(report.plan_p99_ms, 3),
            "qwait_p99_ms": round(report.queue_wait_p99_ms, 3),
            "cache_hits": f"{100 * report.cache_hit_rate:.1f}%",
            "miss_rate": f"{100 * report.miss_rate:.1f}%",
            "recur_violation": f"{100 * report.recurring_violation_rate:.1f}%",
            "idle_machine_s": round(report.provider_idle_machine_s, 1),
            "user_cost_$": round(report.user_cost_dollars, 2),
            "fingerprint": report.fingerprint()[:12],
        }
    ]
    save_result(
        "load_harness",
        format_table(rows, title=f"Load harness — {JOBS} jobs, seed {SEED}"),
    )
    assert report.planned == report.offered  # default capacity absorbs 400
    assert report.executed == report.planned
    assert report.plan_p99_ms >= report.plan_p50_ms > 0.0
    assert report.cache_hit_rate > 0.2  # grid pinning keeps estimators warm
    assert report.recurring_runs > 0
    assert report.user_cost_dollars > 0.0
    # Bit-identical rerun: the simulated outcome is a pure function of
    # the seed, never of this machine's clock.
    assert _run().fingerprint() == report.fingerprint()
