"""Engine scale-out benchmark: parallel speedup + delta-checkpoint bytes.

Runs one order of magnitude beyond the largest scale the other pins use
(50k vertices in ``test_engine_throughput``): an RMAT scale-19 graph —
524,288 vertices, ~8M edges — streamed straight into an on-disk CSR
store and memory-mapped, never materialized as an edge list in RAM.

Two pins:

* **Parallel speedup** — the shared-memory multiprocess engine must be
  bit-identical to the serial engine at this scale, and >= 1.5x faster
  in supersteps/sec when the runner has >= 4 cores (the speedup
  assertion is skipped on smaller machines; identity always holds).
* **Delta checkpoints** — a steady-state delta checkpoint on SSSP must
  be >= 3x smaller than the format-2 full snapshot of the same state.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.engine import (
    CheckpointManager,
    DataStore,
    PregelEngine,
    parallel_execution_supported,
)
from repro.engine.algorithms import SSSP, PageRank
from repro.graph.io import build_rmat_csr, csr_nbytes
from repro.partitioning.hashing import HashPartitioner

SCALE = 19  # 2**19 = 524,288 vertices, ~8M edges after self-loop drops
NUM_WORKERS = 4
PAGERANK_ITERATIONS = 3
MIN_PARALLEL_SPEEDUP = 1.5
MIN_DELTA_RATIO = 3.0


@pytest.fixture(scope="module")
def graph(tmp_path_factory):
    directory = tmp_path_factory.mktemp("rmat-scaleout")
    return build_rmat_csr(SCALE, directory, seed=42)


@pytest.fixture(scope="module")
def partitioning(graph):
    return HashPartitioner().partition(graph, NUM_WORKERS)


@pytest.mark.skipif(
    not parallel_execution_supported(),
    reason="fork start method unavailable on this platform",
)
def test_parallel_speedup(graph, partitioning, save_result):
    serial_engine = PregelEngine(graph, PageRank(iterations=PAGERANK_ITERATIONS), partitioning)
    t0 = time.perf_counter()
    serial = serial_engine.run()
    serial_elapsed = time.perf_counter() - t0
    serial_rate = serial.supersteps_run / serial_elapsed

    with PregelEngine(
        graph,
        PageRank(iterations=PAGERANK_ITERATIONS),
        partitioning,
        execution="parallel",
    ) as engine:
        t0 = time.perf_counter()
        parallel = engine.run()
        parallel_elapsed = time.perf_counter() - t0
    parallel_rate = parallel.supersteps_run / parallel_elapsed

    speedup = parallel_rate / serial_rate
    cores = os.cpu_count() or 1
    rendered = "\n".join(
        [
            f"engine scale-out: PageRank (RMAT scale {SCALE}, "
            f"{graph.num_vertices:,} vertices, {graph.num_edges:,} edges, "
            f"{csr_nbytes(graph) >> 20} MiB on-disk CSR, "
            f"{NUM_WORKERS} workers, {cores} cores)",
            f"  serial engine  : {serial_rate:8.2f} supersteps/s "
            f"({serial_elapsed:.3f}s)",
            f"  parallel engine: {parallel_rate:8.2f} supersteps/s "
            f"({parallel_elapsed:.3f}s)",
            f"  speedup        : {speedup:8.2f}x",
        ]
    )
    save_result("engine_scaleout_speedup", rendered)

    # Bit-identity holds at every scale and core count.
    assert serial.supersteps_run == parallel.supersteps_run
    assert np.array_equal(serial.values_array(), parallel.values_array())
    assert serial.stats == parallel.stats
    if cores >= 4:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel engine only {speedup:.2f}x faster on {cores} cores "
            f"(need >= {MIN_PARALLEL_SPEEDUP}x)"
        )


def test_delta_checkpoint_bytes(graph, partitioning, save_result):
    # Drive SSSP into steady state: on a scale-19 RMAT the distance
    # frontier collapses after a handful of supersteps, so most vertex
    # values are final and a delta captures only the stragglers.
    engine = PregelEngine(graph, SSSP(source=0), partitioning)
    for _ in range(6):
        if not engine.step():
            break

    store = DataStore()
    format2 = CheckpointManager(store, "fmt2", codec=None)
    fmt2_info = format2.save(engine)

    delta_store = DataStore()
    manager = CheckpointManager(delta_store, "delta", delta=True, full_interval=8)
    full_info = manager.save(engine)  # full base
    engine.step()
    delta_info = manager.save(engine)  # steady-state delta

    ratio = fmt2_info.nbytes / max(1, delta_info.nbytes)
    rendered = "\n".join(
        [
            f"delta checkpoints: SSSP (RMAT scale {SCALE}, "
            f"superstep {engine.superstep})",
            f"  format-2 full snapshot : {fmt2_info.nbytes:>12,} bytes",
            f"  format-3 full (zlib)   : {full_info.nbytes:>12,} bytes",
            f"  format-3 delta (zlib)  : {delta_info.nbytes:>12,} bytes",
            f"  full/delta ratio       : {ratio:12.1f}x",
        ]
    )
    save_result("engine_scaleout_checkpoints", rendered)

    assert delta_info.kind == "delta"
    assert ratio >= MIN_DELTA_RATIO, (
        f"delta checkpoint only {ratio:.1f}x smaller than format 2 "
        f"(need >= {MIN_DELTA_RATIO}x)"
    )

    # The delta chain must restore to the exact engine state.
    restored = PregelEngine(graph, SSSP(source=0), partitioning)
    manager.load_into(restored, delta_info)
    assert restored.superstep == engine.superstep
    assert np.array_equal(restored._values, engine._values)
