"""Extension studies beyond the paper's figures.

* Catalogue breadth: Hourglass given the full 3x3 configuration grid vs
  the paper's paired catalogue.
* Mechanistic scaling: the engine-derived coordination penalty that
  justifies the performance model's ``w**-sync_penalty`` law.
"""

from __future__ import annotations

from repro.engine import fit_sync_penalty
from repro.engine.algorithms import PageRank
from repro.experiments import catalog_study
from repro.experiments.report import format_table
from repro.graph import get_dataset


def test_catalog_breadth(benchmark, setup, save_result):
    cells = benchmark.pedantic(
        catalog_study.run,
        kwargs={"setup": setup, "num_simulations": 8},
        rounds=1,
        iterations=1,
    )
    save_result("extension_catalog_breadth", catalog_study.render(cells))

    # Hourglass stays deadline-safe on either menu.
    assert all(c.missed_percent == 0 for c in cells)
    by_key = {(c.catalog_name, c.slack_percent): c for c in cells}
    for slack in {c.slack_percent for c in cells}:
        paired = by_key[("paired-3", slack)]
        grid = by_key[("grid-9", slack)]
        # The wider menu can only help or match (same feasible set plus
        # more options), modulo simulation noise.
        assert grid.normalized_cost <= paired.normalized_cost * 1.25


def test_end_to_end_runtime(benchmark, setup, save_result):
    """A real PageRank over the market: survives evictions, exact values."""
    from repro.core import HourglassProvisioner, OnDemandProvisioner
    from repro.engine import PregelEngine
    from repro.graph import get_dataset
    from repro.runtime import HourglassRuntime
    from repro.utils.units import HOURS

    graph = get_dataset("hollywood").generate(seed=3)

    def run():
        runtime = HourglassRuntime(
            graph,
            lambda: PageRank(iterations=20),
            setup.market,
            setup.catalog,
            HourglassProvisioner(),
            seed=1,
            time_scale=4000,
            data_scale=10_000,
        )
        budget = runtime.perf.fixed_time(runtime.lrc) + 1.5 * runtime.perf.exec_time(
            runtime.lrc
        )
        results = []
        for start_hours in (2, 40, 90, 150):
            results.append(
                runtime.execute(start_hours * HOURS, start_hours * HOURS + budget)
            )
        runtime.provisioner = OnDemandProvisioner()
        od = runtime.execute(2 * HOURS, 2 * HOURS + budget)
        return runtime, results, od

    runtime, results, od = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "start": f"{i}",
            "cost_$": round(r.cost, 2),
            "missed": r.missed_deadline,
            "evictions": r.evictions,
            "deployments": r.deployments,
        }
        for i, r in enumerate(results)
    ]
    rows.append({"start": "on-demand", "cost_$": round(od.cost, 2), "missed": False,
                 "evictions": 0, "deployments": 1})
    save_result(
        "extension_end_to_end",
        format_table(rows, title="End-to-end runtime — real PageRank over the market"),
    )

    undisturbed = PregelEngine(
        graph, PageRank(iterations=20), runtime.artefact.cluster(4, seed=1)
    ).run()
    total_evictions = sum(r.evictions for r in results)
    for r in results:
        assert not r.missed_deadline
        assert r.cost < od.cost  # spot beats on-demand in every window
        worst = max(
            abs(r.values[v] - undisturbed.values[v]) for v in undisturbed.values
        )
        assert worst < 1e-12  # recovery is exact
    assert total_evictions >= 1, "expected at least one eviction across windows"


def test_sync_penalty_emerges_from_engine(benchmark, save_result):
    graph = get_dataset("orkut").generate(seed=42)

    def fit():
        return fit_sync_penalty(
            graph, lambda: PageRank(iterations=5), worker_counts=(2, 4, 8, 16), seed=1
        )

    penalty, times = benchmark.pedantic(fit, rounds=1, iterations=1)
    rows = [
        {"workers": w, "modeled_time_s": round(times[w], 2)} for w in sorted(times)
    ]
    rows.append({"workers": "fit w**p", "modeled_time_s": round(penalty, 3)})
    save_result(
        "extension_sync_penalty",
        format_table(rows, title="Mechanistic coordination penalty (equal total capacity)"),
    )
    # The engine reproduces the performance model's qualitative law: a
    # positive coordination exponent (the paper's spread implies 0.66;
    # the exact value depends on the timing constants).
    assert 0.1 < penalty < 1.2
