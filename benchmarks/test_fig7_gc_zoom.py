"""Regenerates Figure 7: per-mechanism ablation on the GC job.

Paper shape: micro-partitioning (µMETIS) is always worth having — on
average ~23 % cheaper than running METIS per configuration — and the
slack-aware strategy clearly beats SpotOn+DP at small slacks.
"""

from __future__ import annotations

from repro.experiments import fig7_gc_zoom

SLACKS = (0.1, 0.3, 0.5, 0.7, 1.0)
NUM_SIMULATIONS = 10


def test_fig7_gc_zoom(benchmark, setup, save_result):
    results = benchmark.pedantic(
        fig7_gc_zoom.run,
        kwargs={"setup": setup, "slacks": SLACKS, "num_simulations": NUM_SIMULATIONS},
        rounds=1,
        iterations=1,
    )
    save_result("fig7_gc_zoom", fig7_gc_zoom.render(results))

    def curve(name):
        return {r.slack_percent: r for r in results if r.strategy == name}

    metis = curve("slackaware+metis")
    umetis = curve("slackaware+umetis")
    spoton_dp = curve("spoton+dp+umetis")

    # Nothing deadline-safe ever misses.
    for r in results:
        assert r.missed_percent == 0

    # Micro-partitioning helps the slack-aware strategy at every slack.
    gains = [
        metis[s].normalized_cost - umetis[s].normalized_cost for s in metis
    ]
    assert all(g > -0.05 for g in gains)
    assert sum(gains) / len(gains) > 0.05, "µMETIS should save clearly on average"

    # Slack-awareness beats naive DP at the smallest slack.
    assert umetis[10].normalized_cost < spoton_dp[10].normalized_cost
