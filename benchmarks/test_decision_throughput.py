"""Decision-path micro-benchmark: provisioning decisions/sec, seed vs DP.

The seed decision path evaluated the §5.3 expected cost with a plain
recursion whose every state re-derived its inputs: eviction MTTFs via a
fresh ``ndarray.mean()``, ECDF lookups via NumPy scalar ``searchsorted``
calls, per-state performance-model methods.  This file restores that
behaviour faithfully — the recursive reference oracle
(:class:`RecursiveApproximateCostEstimator`, the seed recursion kept
verbatim) plus seed-replica eviction models — and races it against the
iterative-DP estimator on two workloads:

* one cold :meth:`HourglassProvisioner.select` per Fig 9 (app, slack)
  cell — the DP must be at least 5x more decisions/sec while choosing
  identical configurations;
* a Fig 5-sized sweep slice through the parallel sweep driver — at
  least 3x faster wall-clock with bit-identical cell results.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cloud.eviction import EvictionModel
from repro.core.expected_cost import RecursiveApproximateCostEstimator
from repro.core.job import (
    COLORING_PROFILE,
    PAGERANK_PROFILE,
    SSSP_PROFILE,
    job_with_slack,
)
from repro.core.perfmodel import RELOAD_MICRO
from repro.core.provisioner import HourglassProvisioner, ProvisioningContext
from repro.core.slack import SlackModel
from repro.experiments.common import SweepTask, run_sweep_tasks, sweep_strategy

PROFILES = {
    "sssp": SSSP_PROFILE,
    "pagerank": PAGERANK_PROFILE,
    "coloring": COLORING_PROFILE,
}
FIG9_SLACKS = (0.1, 0.3, 0.5, 0.7, 1.0)
MIN_DECISION_SPEEDUP = 5.0
MIN_SWEEP_SPEEDUP = 3.0


class _SeedEvictionModel(EvictionModel):
    """Replica of the seed empirical model's per-query costs.

    The seed recomputed the MTTF (``ndarray.mean()``) on every property
    read and answered each CDF query with a scalar NumPy searchsorted —
    both sat directly on the expected-cost hot path.  Values are
    identical to the current table-backed model; only the cost differs.
    """

    def __init__(self, uptimes: np.ndarray):
        self._uptimes = uptimes

    def cdf(self, uptime: float) -> float:
        if uptime <= 0:
            return 0.0
        return float(np.searchsorted(self._uptimes, uptime, side="right")) / len(
            self._uptimes
        )

    @property
    def mttf(self) -> float:
        return float(self._uptimes.mean())


class _SeedStatsMarket:
    """Market proxy handing the estimator seed-replica eviction models."""

    def __init__(self, market):
        self._market = market
        self._models: dict[int, _SeedEvictionModel] = {}

    def __getattr__(self, name):
        return getattr(self._market, name)

    def eviction_model(self, config):
        model = self._market.eviction_model(config)
        seed = self._models.get(id(model))
        if seed is None:
            seed = _SeedEvictionModel(model._uptimes)
            self._models[id(model)] = seed
        return seed


def _seed_estimator_factory(slack_model, market, catalog, **kwargs):
    return RecursiveApproximateCostEstimator(
        slack_model, _SeedStatsMarket(market), catalog, **kwargs
    )


def _fig9_contexts(setup):
    contexts = []
    for app, profile in PROFILES.items():
        perf = setup.perf_model(profile, RELOAD_MICRO)
        lrc = setup.lrc(perf)
        for slack in FIG9_SLACKS:
            job = job_with_slack(profile, 0.0, slack, perf.fixed_time(lrc))
            slack_model = SlackModel(perf=perf, lrc=lrc, deadline=job.deadline)
            contexts.append(
                ProvisioningContext(
                    t=0.0,
                    work_left=1.0,
                    current_config=None,
                    current_uptime=0.0,
                    slack_model=slack_model,
                    market=setup.market,
                    catalog=setup.catalog,
                )
            )
    return contexts


def _time_decisions(contexts, estimator_factory):
    """One cold select() per context: total seconds and chosen configs."""
    choices = []
    elapsed = 0.0
    for ctx in contexts:
        provisioner = HourglassProvisioner(estimator_factory=estimator_factory)
        t0 = time.perf_counter()
        choices.append(provisioner.select(ctx))
        elapsed += time.perf_counter() - t0
    return elapsed, choices


def test_decision_throughput(setup, save_result):
    contexts = _fig9_contexts(setup)

    seed_elapsed, seed_choices = _time_decisions(contexts, _seed_estimator_factory)
    fast_elapsed, fast_choices = _time_decisions(
        contexts, HourglassProvisioner().estimator_factory
    )
    seed_rate = len(contexts) / seed_elapsed
    fast_rate = len(contexts) / fast_elapsed
    decision_speedup = fast_rate / seed_rate

    # Fig 5-sized sweep slice, dominated by provisioning decisions: the
    # seed stack runs the cells serially with the recursive estimator,
    # the new stack runs the same cells through the parallel driver with
    # the iterative DP.
    sweep_tasks = [
        SweepTask(
            profile=PROFILES[app],
            slack_fraction=slack,
            strategy="hourglass",
            num_simulations=2,
        )
        for app, slack in (
            ("sssp", 0.5),
            ("pagerank", 0.5),
            ("coloring", 0.3),
            ("coloring", 0.5),
        )
    ]
    t0 = time.perf_counter()
    seed_cells = [
        sweep_strategy(
            setup,
            task.profile,
            task.slack_fraction,
            HourglassProvisioner(estimator_factory=_seed_estimator_factory),
            num_simulations=task.num_simulations,
        )
        for task in sweep_tasks
    ]
    seed_sweep = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast_cells = run_sweep_tasks(setup, sweep_tasks)
    fast_sweep = time.perf_counter() - t0
    sweep_speedup = seed_sweep / fast_sweep

    rendered = "\n".join(
        [
            "decision throughput: HourglassProvisioner.select, "
            f"fig9 workload ({len(contexts)} cold decisions)",
            f"  seed recursive estimator: {seed_rate:8.2f} decisions/s "
            f"({seed_elapsed:.3f}s)",
            f"  iterative DP estimator  : {fast_rate:8.2f} decisions/s "
            f"({fast_elapsed:.3f}s)",
            f"  speedup                 : {decision_speedup:8.2f}x",
            "",
            f"sweep wall-clock: fig5-sized slice ({len(sweep_tasks)} cells)",
            f"  seed serial sweep       : {seed_sweep:8.3f}s",
            f"  parallel driver + DP    : {fast_sweep:8.3f}s",
            f"  speedup                 : {sweep_speedup:8.2f}x",
        ]
    )
    save_result("decision_throughput", rendered)

    assert [c.name for c in seed_choices] == [c.name for c in fast_choices]
    assert seed_cells == fast_cells
    assert decision_speedup >= MIN_DECISION_SPEEDUP, (
        f"DP estimator only {decision_speedup:.1f}x faster "
        f"(need >= {MIN_DECISION_SPEEDUP}x)"
    )
    assert sweep_speedup >= MIN_SWEEP_SPEEDUP, (
        f"new sweep stack only {sweep_speedup:.1f}x faster "
        f"(need >= {MIN_SWEEP_SPEEDUP}x)"
    )
