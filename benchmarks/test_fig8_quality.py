"""Regenerates Figure 8: partition quality of micro-partition clustering.

Paper shape: clustering 64 micro-partitions costs only a few percentage
points of edge cut versus running the base partitioner from scratch
(METIS +1.7-5 %, FENNEL +4.2-7.7 % on average), and both stay far below
random placement (1 - 1/k).
"""

from __future__ import annotations

from repro.experiments import fig8_quality


def test_fig8_quality(benchmark, save_result):
    cells = benchmark.pedantic(
        fig8_quality.run, kwargs={"seed": 42}, rounds=1, iterations=1
    )
    save_result("fig8_quality", fig8_quality.render(cells))

    # Micro clustering stays near the base partitioner...
    degradations = [
        c.degradation_percent for c in cells if c.num_parts < fig8_quality.NUM_MICRO_PARTS
    ]
    mean_degradation = sum(degradations) / len(degradations)
    assert mean_degradation < 10.0, (
        f"mean micro-clustering degradation {mean_degradation:.1f}% too high"
    )

    # ...and beats random placement on the structured graphs for METIS.
    structured = [
        c
        for c in cells
        if c.base == "metis" and c.dataset in ("hollywood", "human-gene")
    ]
    for cell in structured:
        assert cell.micro_cut_percent < cell.random_cut_percent

    # Identity clustering (k == 64) can never degrade quality.
    for cell in cells:
        if cell.num_parts == fig8_quality.NUM_MICRO_PARTS:
            assert cell.micro_cut_percent <= cell.base_cut_percent + 7.5
